//! Algorithm R — parallel kernel extraction with a replicated circuit
//! (paper §3, after ProperMIS [4]).
//!
//! Every worker holds its own replica of the network and the full KC
//! matrix. Concurrency comes only from subdividing the rectangle search:
//! worker `p` of `n` explores the rectangles whose **leftmost column**
//! falls in its stripe (Figure 1). Each iteration then reduces the
//! per-worker candidates to one global best rectangle — picked
//! deterministically so every replica follows the exact sequential
//! search path — and every worker applies the same extraction to its own
//! copy. The per-step barrier and the redundant replica maintenance are
//! the paper's explanation for this algorithm's poor speedup; both are
//! reproduced faithfully here.

use crate::ctl::StopReason;
use crate::report::{ExtractReport, PhaseTiming};
use crate::seq::{Engine, ExtractConfig};
use pf_kcmatrix::Rectangle;
use pf_network::{Network, SignalId};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Options for [`replicated_extract`].
#[derive(Clone, Debug)]
pub struct ReplicatedConfig {
    /// Number of workers (replicas).
    pub procs: usize,
    /// Extraction options shared by every replica.
    pub extract: ExtractConfig,
    /// Wall-clock deadline; on expiry the run stops after the current
    /// iteration and the report is flagged `timed_out` (the paper's
    /// Table 2 marks such runs "-").
    pub deadline: Option<Duration>,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        ReplicatedConfig {
            procs: 2,
            extract: ExtractConfig {
                name_prefix: "rkx_".to_string(),
                ..ExtractConfig::default()
            },
            deadline: None,
        }
    }
}

/// Deterministic choice among per-stripe candidates: maximum value, ties
/// broken on the lexicographically smallest (cols, rows). Mirrors "the
/// processor which owns the root of the search tree identifies the best
/// rectangle and broadcasts it".
fn pick_best(candidates: &[Vec<Rectangle>]) -> Option<Rectangle> {
    let mut best: Option<&Rectangle> = None;
    for r in candidates.iter().flatten() {
        best = Some(match best {
            None => r,
            Some(b) => {
                if (r.value, &b.cols, &b.rows) > (b.value, &r.cols, &r.rows) {
                    r
                } else {
                    b
                }
            }
        });
    }
    best.cloned()
}

/// Runs Algorithm R on the network, in place. Returns the report.
pub fn replicated_extract(nw: &mut Network, cfg: &ReplicatedConfig) -> ExtractReport {
    let start = Instant::now();
    let p = cfg.procs.max(1);
    let lc_before = nw.literal_count();
    let targets: Vec<SignalId> = nw.node_ids().collect();

    let barrier = Barrier::new(p);
    // Per-stripe candidate lists: one rectangle each classically, up to
    // `search.topk` with batching. The decision broadcast is likewise a
    // list — empty means stop.
    let candidates: Mutex<Vec<Vec<Rectangle>>> = Mutex::new(vec![Vec::new(); p]);
    let decision: Mutex<Vec<Rectangle>> = Mutex::new(Vec::new());
    let timed_out = AtomicBool::new(false);
    let cancelled = AtomicBool::new(false);
    let exhausted_any = AtomicBool::new(false);
    let passes = AtomicUsize::new(0);
    let batch_candidates = AtomicUsize::new(0);
    let batch_accepted = AtomicUsize::new(0);
    let batch_rejected = AtomicUsize::new(0);
    let outcome: Mutex<Option<(Network, usize, i64)>> = Mutex::new(None);
    let replicate_elapsed: Mutex<Duration> = Mutex::new(Duration::default());
    let batching = cfg.extract.search.topk > 1;
    let nw_ref: &Network = nw;

    std::thread::scope(|s| {
        for pid in 0..p {
            let barrier = &barrier;
            let candidates = &candidates;
            let decision = &decision;
            let timed_out = &timed_out;
            let cancelled = &cancelled;
            let exhausted_any = &exhausted_any;
            let passes = &passes;
            let batch_candidates = &batch_candidates;
            let batch_accepted = &batch_accepted;
            let batch_rejected = &batch_rejected;
            let outcome = &outcome;
            let replicate_elapsed = &replicate_elapsed;
            let targets = &targets;
            let cfg = &cfg;
            // Lane opened (and the replicate span started) driver-side,
            // so the span covers thread-spawn latency — which the report
            // attributes to the replicate phase too.
            let mut lane = cfg.extract.trace.lane(&format!("r{pid}"));
            let replicate_span = lane.start("replicate");
            s.spawn(move || {
                // The replica: full circuit and full matrix per worker.
                // Matrix generation itself uses the §3 parallel scheme
                // (processor-offset row labels merged in label order),
                // so all replicas are bit-identical by construction.
                let mut replica = nw_ref.clone();
                let mut engine = Engine::new_parallel(&replica, targets, cfg.extract.clone(), p);
                // With `search.par_threads ≥ 1` each replica owns a
                // persistent search pool; pre-spawn its workers inside
                // the replicate span so no cover pass pays spawn cost.
                // The per-replica stripe is constant, so the pool's
                // cross-pass ceilings stay valid between iterations.
                engine.warm_pool();
                lane.end(replicate_span);
                if pid == 0 {
                    *replicate_elapsed.lock().unwrap() = start.elapsed();
                }
                let cover_span = lane.start("cover");
                let mut extractions = 0usize;
                let mut total_value = 0i64;
                loop {
                    let pass = lane.start("search");
                    // The plural search: the per-stripe canonical top-K
                    // (the classic single candidate when `topk ≤ 1` —
                    // the singular entry points are thin wrappers over
                    // the same plural engine).
                    let (rects, stats) = engine.search_batch(Some((pid as u32, p as u32)));
                    if stats.budget_exhausted {
                        exhausted_any.store(true, Ordering::Relaxed);
                    }
                    crate::seq::end_search_span(&mut lane, pass, rects.first(), &stats);
                    candidates.lock().unwrap()[pid] = rects;
                    barrier.wait();
                    if pid == 0 {
                        // Reduction at the root of the search tree — the
                        // per-iteration barrier, and so the natural spot
                        // for every stop check. Fault site too: inject
                        // latency or cancel here (a panic would strand
                        // the sibling replicas at the barrier).
                        cfg.extract.ctl.fault_point("replicated:reduce");
                        passes.fetch_add(1, Ordering::Relaxed);
                        let mut stop = false;
                        if let Some(deadline) = cfg.deadline {
                            if start.elapsed() > deadline {
                                stop = true;
                                timed_out.store(true, Ordering::Relaxed);
                            }
                        }
                        match cfg.extract.ctl.stop_reason() {
                            Some(StopReason::DeadlineExpired) => {
                                stop = true;
                                timed_out.store(true, Ordering::Relaxed);
                            }
                            Some(StopReason::Cancelled) => {
                                stop = true;
                                cancelled.store(true, Ordering::Relaxed);
                            }
                            None => {}
                        }
                        let d: Vec<Rectangle> = if stop {
                            Vec::new()
                        } else if batching {
                            // Merge the per-stripe top-K lists into the
                            // canonical global top-K (every global
                            // member is in its own stripe's list, so
                            // the merge is stripe-count independent),
                            // then run the same select→apply→revalidate
                            // drain the sequential engine uses — on pid
                            // 0's own replica, whose matrix all other
                            // replicas mirror. The full drained
                            // sequence is broadcast; the siblings
                            // replay it verbatim.
                            let all: Vec<Rectangle> = {
                                let cands = candidates.lock().unwrap();
                                cands.iter().flatten().cloned().collect()
                            };
                            batch_candidates.fetch_add(all.len(), Ordering::Relaxed);
                            let mut wave =
                                pf_kcmatrix::canonical_top_k(&all, cfg.extract.search.topk);
                            let mut sequence: Vec<Rectangle> = Vec::new();
                            while !wave.is_empty() {
                                let remaining = cfg
                                    .extract
                                    .max_extractions
                                    .saturating_sub(extractions + sequence.len());
                                if remaining == 0 {
                                    break;
                                }
                                let sel = engine.select_batch(&wave, remaining);
                                for rect in &sel {
                                    let apply_span = lane.start("apply");
                                    engine.apply(&mut replica, rect);
                                    lane.end_with(apply_span, || vec![("value", rect.value)]);
                                }
                                wave = wave
                                    .into_iter()
                                    .filter(|c| !sel.contains(c))
                                    .filter_map(|c| engine.revalidate(&c))
                                    .collect();
                                sequence.extend(sel);
                            }
                            batch_accepted.fetch_add(sequence.len(), Ordering::Relaxed);
                            batch_rejected.fetch_add(
                                all.len().saturating_sub(sequence.len()),
                                Ordering::Relaxed,
                            );
                            sequence
                        } else {
                            pick_best(&candidates.lock().unwrap()).into_iter().collect()
                        };
                        *decision.lock().unwrap() = d;
                    }
                    barrier.wait();
                    let chosen = decision.lock().unwrap().clone();
                    if chosen.is_empty() {
                        break;
                    }
                    // Every replica applies the same extraction(s), in
                    // the same order — identical deterministic state on
                    // all workers. Pid 0 already applied them during the
                    // drain above (batching only), so it just accounts.
                    for rect in &chosen {
                        total_value += rect.value;
                        if !(batching && pid == 0) {
                            let apply_span = lane.start("apply");
                            engine.apply(&mut replica, rect);
                            lane.end_with(apply_span, || vec![("value", rect.value)]);
                        }
                        extractions += 1;
                    }
                    barrier.wait();
                }
                lane.end(cover_span);
                if pid == 0 {
                    *outcome.lock().unwrap() = Some((replica, extractions, total_value));
                }
            });
        }
    });

    let (result, extractions, total_value) = outcome
        .into_inner()
        .unwrap()
        .expect("worker 0 publishes its replica");
    *nw = result;
    let elapsed = start.elapsed();
    let setup = *replicate_elapsed.lock().unwrap();
    ExtractReport {
        lc_before,
        lc_after: nw.literal_count(),
        extractions,
        total_value,
        elapsed,
        budget_exhausted: exhausted_any.load(Ordering::Relaxed),
        shipped_rectangles: 0,
        timed_out: timed_out.load(Ordering::Relaxed),
        cancelled: cancelled.load(Ordering::Relaxed),
        degraded: false,
        recovery_rects: 0,
        passes: passes.load(Ordering::Relaxed),
        batch_candidates: batch_candidates.load(Ordering::Relaxed),
        batch_accepted: batch_accepted.load(Ordering::Relaxed),
        batch_rejected: batch_rejected.load(Ordering::Relaxed),
        resub_pairs_considered: 0,
        resub_pairs_divided: 0,
        resub_worklist_rounds: 0,
        setup,
        phases: vec![
            PhaseTiming::new("replicate", setup),
            PhaseTiming::new("cover", elapsed.saturating_sub(setup)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::extract_kernels;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};

    #[test]
    fn matches_sequential_quality_on_example() {
        // Same search path as sequential ⇒ identical result.
        for procs in [1usize, 2, 3, 6] {
            let (mut nw, _) = example_1_1();
            let original = nw.clone();
            let report = replicated_extract(
                &mut nw,
                &ReplicatedConfig {
                    procs,
                    ..ReplicatedConfig::default()
                },
            );
            assert_eq!(report.lc_after, 21, "procs={procs}");
            assert_eq!(report.extractions, 3);
            assert!(!report.timed_out);
            assert!(
                equivalent_random(&original, &nw, &EquivConfig::default()).unwrap(),
                "procs={procs}"
            );
        }
    }

    #[test]
    fn identical_extraction_sequence_to_sequential() {
        let (mut seq_nw, _) = example_1_1();
        let seq_report = extract_kernels(&mut seq_nw, &[], &Default::default());
        let (mut par_nw, _) = example_1_1();
        let par_report = replicated_extract(
            &mut par_nw,
            &ReplicatedConfig {
                procs: 4,
                ..ReplicatedConfig::default()
            },
        );
        assert_eq!(seq_report.lc_after, par_report.lc_after);
        assert_eq!(seq_report.total_value, par_report.total_value);
        assert_eq!(seq_report.extractions, par_report.extractions);
    }

    #[test]
    fn batched_replicated_is_proc_count_invariant() {
        // The per-stripe top-K lists merge to the canonical global
        // top-K (every global member survives its own stripe's list),
        // so the drained batch sequence — and the final network — are
        // identical for any stripe count, and identical to the batched
        // sequential engine.
        let profile = pf_workloads::CircuitProfile::small("rbatch", 11);
        let mut seq_cfg = crate::seq::ExtractConfig::default();
        seq_cfg.search.topk = 8;
        let mut seq_nw = pf_workloads::generate(&profile);
        let seq_report = extract_kernels(&mut seq_nw, &[], &seq_cfg);
        assert!(seq_report.extractions > 1);
        for procs in [1usize, 2, 4] {
            let mut cfg = ReplicatedConfig {
                procs,
                ..ReplicatedConfig::default()
            };
            cfg.extract.search.topk = 8;
            let mut nw = pf_workloads::generate(&profile);
            let report = replicated_extract(&mut nw, &cfg);
            assert_eq!(report.lc_after, seq_report.lc_after, "procs={procs}");
            assert_eq!(report.total_value, seq_report.total_value);
            assert_eq!(report.extractions, seq_report.extractions);
            assert_eq!(report.passes, seq_report.passes);
            assert_eq!(report.batch_accepted, report.extractions);
            assert!(nw.validate().is_ok());
        }
    }

    #[test]
    fn deadline_flags_timeout() {
        let (mut nw, _) = example_1_1();
        let report = replicated_extract(
            &mut nw,
            &ReplicatedConfig {
                procs: 2,
                deadline: Some(Duration::ZERO),
                ..ReplicatedConfig::default()
            },
        );
        assert!(report.timed_out);
        // Nothing extracted: the deadline fired before the first commit.
        assert_eq!(report.extractions, 0);
        assert_eq!(report.lc_after, report.lc_before);
    }

    #[test]
    fn ctl_deadline_flags_timeout() {
        let (mut nw, _) = example_1_1();
        let mut cfg = ReplicatedConfig {
            procs: 2,
            ..ReplicatedConfig::default()
        };
        cfg.extract.ctl = crate::ctl::RunCtl::with_deadline(Duration::ZERO);
        let report = replicated_extract(&mut nw, &cfg);
        assert!(report.timed_out);
        assert!(!report.cancelled);
        assert_eq!(report.extractions, 0);
    }

    #[test]
    fn ctl_cancel_flags_cancelled() {
        let (mut nw, _) = example_1_1();
        let cfg = ReplicatedConfig {
            procs: 2,
            ..ReplicatedConfig::default()
        };
        cfg.extract.ctl.cancel();
        let report = replicated_extract(&mut nw, &cfg);
        assert!(report.cancelled);
        assert!(!report.timed_out);
        assert_eq!(report.extractions, 0);
        assert_eq!(report.lc_after, report.lc_before);
    }

    #[test]
    fn phases_report_replicate_and_cover() {
        let (mut nw, _) = example_1_1();
        let report = replicated_extract(&mut nw, &ReplicatedConfig::default());
        assert_eq!(report.phases[0].name, "replicate");
        assert_eq!(report.phases[1].name, "cover");
        assert_eq!(report.phase("replicate"), Some(report.setup));
    }

    #[test]
    fn pick_best_is_deterministic_on_ties() {
        let a = Rectangle {
            rows: vec![1, 2],
            cols: vec![0, 3],
            value: 5,
        };
        let b = Rectangle {
            rows: vec![0, 1],
            cols: vec![1, 2],
            value: 5,
        };
        let got1 = pick_best(&[vec![a.clone()], vec![b.clone()]]).unwrap();
        let got2 = pick_best(&[vec![b.clone()], vec![a.clone()]]).unwrap();
        assert_eq!(got1, got2);
        assert_eq!(got1.cols, vec![0, 3]); // smaller cols wins the tie
    }

    #[test]
    fn pick_best_prefers_value() {
        let small = Rectangle {
            rows: vec![0],
            cols: vec![0, 1],
            value: 2,
        };
        let big = Rectangle {
            rows: vec![9],
            cols: vec![8, 9],
            value: 7,
        };
        assert_eq!(
            pick_best(&[vec![small], vec![big.clone()], vec![]]).unwrap(),
            big
        );
        assert!(pick_best(&[vec![], vec![]]).is_none());
    }
}
