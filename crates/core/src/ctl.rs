//! Cooperative run control — cancellation and deadlines for the
//! extraction drivers.
//!
//! A [`RunCtl`] is a cheaply clonable handle to shared stop state: an
//! explicit cancellation flag plus an optional wall-clock deadline. The
//! algorithm drivers check it at their natural barrier points — the
//! sequential cover loop head, Algorithm R's reduction step, Algorithm
//! I's per-worker loop (via the shared handle inside
//! [`ExtractConfig`](crate::seq::ExtractConfig)), and Algorithm L's
//! worker step loop — so a caller such as `pf-serve` can abandon a run
//! without killing threads or poisoning shared state. The run winds down
//! at the next check, merges what it has, and reports *why* it stopped
//! ([`ExtractReport::timed_out`](crate::report::ExtractReport) /
//! [`cancelled`](crate::report::ExtractReport)).

use crate::fault::{FaultKind, FaultPlan};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was asked to stop early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// [`RunCtl::cancel`] was called.
    Cancelled,
    /// The deadline passed.
    DeadlineExpired,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Attached fault-injection plan; `None` on every production path,
    /// which makes [`RunCtl::fault_point`] a single null check.
    fault: Option<Arc<FaultPlan>>,
}

/// Shared stop-control handle. Clones observe (and trigger) the same
/// cancellation; embedding one in a config and cloning the config keeps
/// every worker on the same handle.
#[derive(Clone, Debug)]
pub struct RunCtl {
    inner: Arc<Inner>,
}

impl Default for RunCtl {
    fn default() -> Self {
        RunCtl::new()
    }
}

impl RunCtl {
    /// A control that never stops a run on its own (no deadline).
    pub fn new() -> Self {
        RunCtl {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                fault: None,
            }),
        }
    }

    /// A control whose deadline is `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::deadline_at(Instant::now() + timeout)
    }

    /// A control with an absolute deadline.
    pub fn deadline_at(at: Instant) -> Self {
        RunCtl {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(at),
                fault: None,
            }),
        }
    }

    /// Rebuilds this control with a fault-injection plan attached.
    /// Intended at construction time (before the handle is cloned into
    /// workers): clones made *before* this call keep the plain control.
    pub fn with_faults(self, plan: Arc<FaultPlan>) -> RunCtl {
        RunCtl {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(self.is_cancelled()),
                deadline: self.inner.deadline,
                fault: Some(plan),
            }),
        }
    }

    /// Whether a fault plan is attached (used by callers that would
    /// otherwise pay to build a scoped site name).
    pub fn has_faults(&self) -> bool {
        self.inner.fault.is_some()
    }

    /// The attached fault plan, if any (for post-run hit assertions).
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.inner.fault.as_ref()
    }

    /// A named fault-injection checkpoint. With no plan attached (the
    /// production path) this is one branch on a `None`; with a plan, a
    /// matching rule may panic, sleep, or cancel this control. Drivers
    /// call it at the same barrier points where they check
    /// [`should_stop`](RunCtl::should_stop).
    #[inline]
    pub fn fault_point(&self, site: &str) {
        if self.inner.fault.is_some() {
            self.fault_point_slow(site);
        }
    }

    #[cold]
    fn fault_point_slow(&self, site: &str) {
        let Some(plan) = &self.inner.fault else {
            return;
        };
        match plan.decide(site) {
            None => {}
            Some(FaultKind::Panic) => panic!("fault injected: panic at {site}"),
            Some(FaultKind::Latency(extra)) | Some(FaultKind::Stall(extra)) => {
                std::thread::sleep(extra)
            }
            Some(FaultKind::Cancel) => self.cancel(),
            // Message-plane kinds are interpreted by the dist transports
            // at their send/receive boundaries; at a plain checkpoint
            // there is no message to drop or duplicate.
            Some(FaultKind::Drop) | Some(FaultKind::Dup) => {}
        }
    }

    /// Requests cancellation; every clone observes it at its next check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](RunCtl::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Why the run should stop, if it should. Explicit cancellation
    /// outranks the deadline so an operator abort is reported as such
    /// even on an expired job.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.is_cancelled() {
            Some(StopReason::Cancelled)
        } else if self.deadline_expired() {
            Some(StopReason::DeadlineExpired)
        } else {
            None
        }
    }

    /// `true` once the run should wind down — the drivers' barrier-point
    /// check.
    pub fn should_stop(&self) -> bool {
        self.stop_reason().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ctl_never_stops() {
        let ctl = RunCtl::new();
        assert!(!ctl.should_stop());
        assert_eq!(ctl.stop_reason(), None);
        assert_eq!(ctl.remaining(), None);
        assert_eq!(ctl.deadline(), None);
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let ctl = RunCtl::new();
        let seen_by_worker = ctl.clone();
        ctl.cancel();
        assert!(seen_by_worker.is_cancelled());
        assert_eq!(seen_by_worker.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_stops() {
        let ctl = RunCtl::with_deadline(Duration::ZERO);
        assert!(ctl.deadline_expired());
        assert_eq!(ctl.stop_reason(), Some(StopReason::DeadlineExpired));
        assert_eq!(ctl.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_stop_yet() {
        let ctl = RunCtl::with_deadline(Duration::from_secs(3600));
        assert!(!ctl.should_stop());
        assert!(ctl.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let ctl = RunCtl::with_deadline(Duration::ZERO);
        ctl.cancel();
        assert_eq!(ctl.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn fault_point_without_a_plan_is_inert() {
        let ctl = RunCtl::new();
        assert!(!ctl.has_faults());
        for _ in 0..1000 {
            ctl.fault_point("seq:cover");
        }
        assert!(!ctl.should_stop());
    }

    #[test]
    fn injected_cancel_trips_the_stop_check() {
        use crate::fault::{FaultPlan, FaultRule};
        let plan = Arc::new(FaultPlan::new(5).with_rule(FaultRule::cancel_at("site")));
        let ctl = RunCtl::new().with_faults(Arc::clone(&plan));
        assert!(ctl.has_faults());
        assert!(!ctl.should_stop());
        ctl.fault_point("site");
        assert_eq!(ctl.stop_reason(), Some(StopReason::Cancelled));
        assert_eq!(plan.hits("site"), 1);
    }

    #[test]
    fn injected_panic_carries_the_site_name() {
        use crate::fault::{FaultPlan, FaultRule};
        let plan = Arc::new(FaultPlan::new(5).with_rule(FaultRule::panic_at("boom")));
        let ctl = RunCtl::new().with_faults(plan);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctl.fault_point("boom:here")
        }))
        .expect_err("panic rule must fire");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("fault injected"), "{msg}");
        assert!(msg.contains("boom:here"), "{msg}");
    }

    #[test]
    fn with_faults_preserves_deadline_and_cancellation() {
        use crate::fault::FaultPlan;
        let plan = Arc::new(FaultPlan::new(0));
        let ctl = RunCtl::with_deadline(Duration::ZERO).with_faults(Arc::clone(&plan));
        assert!(ctl.deadline_expired());
        let cancelled = RunCtl::new();
        cancelled.cancel();
        assert!(cancelled.with_faults(plan).is_cancelled());
    }

    #[test]
    fn message_kinds_are_inert_at_plain_checkpoints() {
        use crate::fault::{FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(5)
                .with_rule(FaultRule::drop_at("site").max_hits(1))
                .with_rule(FaultRule::dup_at("site").max_hits(1)),
        );
        let ctl = RunCtl::new().with_faults(Arc::clone(&plan));
        ctl.fault_point("site");
        ctl.fault_point("site");
        assert!(!ctl.should_stop(), "drop/dup never stop a run");
        assert_eq!(plan.total_hits(), 2, "the draws are still consumed");
    }

    #[test]
    fn injected_latency_delays_the_checkpoint() {
        use crate::fault::{FaultPlan, FaultRule};
        let plan = Arc::new(
            FaultPlan::new(5)
                .with_rule(FaultRule::latency_at("slow", Duration::from_millis(20)).max_hits(1)),
        );
        let ctl = RunCtl::new().with_faults(plan);
        let t = std::time::Instant::now();
        ctl.fault_point("slow");
        assert!(t.elapsed() >= Duration::from_millis(15));
        // Exhausted: the next checkpoint is instant-ish and never stops.
        ctl.fault_point("slow");
        assert!(!ctl.should_stop());
    }
}
