//! Cooperative run control — cancellation and deadlines for the
//! extraction drivers.
//!
//! A [`RunCtl`] is a cheaply clonable handle to shared stop state: an
//! explicit cancellation flag plus an optional wall-clock deadline. The
//! algorithm drivers check it at their natural barrier points — the
//! sequential cover loop head, Algorithm R's reduction step, Algorithm
//! I's per-worker loop (via the shared handle inside
//! [`ExtractConfig`](crate::seq::ExtractConfig)), and Algorithm L's
//! worker step loop — so a caller such as `pf-serve` can abandon a run
//! without killing threads or poisoning shared state. The run winds down
//! at the next check, merges what it has, and reports *why* it stopped
//! ([`ExtractReport::timed_out`](crate::report::ExtractReport) /
//! [`cancelled`](crate::report::ExtractReport)).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was asked to stop early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// [`RunCtl::cancel`] was called.
    Cancelled,
    /// The deadline passed.
    DeadlineExpired,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared stop-control handle. Clones observe (and trigger) the same
/// cancellation; embedding one in a config and cloning the config keeps
/// every worker on the same handle.
#[derive(Clone, Debug)]
pub struct RunCtl {
    inner: Arc<Inner>,
}

impl Default for RunCtl {
    fn default() -> Self {
        RunCtl::new()
    }
}

impl RunCtl {
    /// A control that never stops a run on its own (no deadline).
    pub fn new() -> Self {
        RunCtl {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A control whose deadline is `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::deadline_at(Instant::now() + timeout)
    }

    /// A control with an absolute deadline.
    pub fn deadline_at(at: Instant) -> Self {
        RunCtl {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(at),
            }),
        }
    }

    /// Requests cancellation; every clone observes it at its next check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](RunCtl::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Why the run should stop, if it should. Explicit cancellation
    /// outranks the deadline so an operator abort is reported as such
    /// even on an expired job.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.is_cancelled() {
            Some(StopReason::Cancelled)
        } else if self.deadline_expired() {
            Some(StopReason::DeadlineExpired)
        } else {
            None
        }
    }

    /// `true` once the run should wind down — the drivers' barrier-point
    /// check.
    pub fn should_stop(&self) -> bool {
        self.stop_reason().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ctl_never_stops() {
        let ctl = RunCtl::new();
        assert!(!ctl.should_stop());
        assert_eq!(ctl.stop_reason(), None);
        assert_eq!(ctl.remaining(), None);
        assert_eq!(ctl.deadline(), None);
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let ctl = RunCtl::new();
        let seen_by_worker = ctl.clone();
        ctl.cancel();
        assert!(seen_by_worker.is_cancelled());
        assert_eq!(seen_by_worker.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_stops() {
        let ctl = RunCtl::with_deadline(Duration::ZERO);
        assert!(ctl.deadline_expired());
        assert_eq!(ctl.stop_reason(), Some(StopReason::DeadlineExpired));
        assert_eq!(ctl.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_stop_yet() {
        let ctl = RunCtl::with_deadline(Duration::from_secs(3600));
        assert!(!ctl.should_stop());
        assert!(ctl.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let ctl = RunCtl::with_deadline(Duration::ZERO);
        ctl.cancel();
        assert_eq!(ctl.stop_reason(), Some(StopReason::Cancelled));
    }
}
