//! Deterministic fault injection for the extraction drivers and the
//! service layer above them.
//!
//! A [`FaultPlan`] is a seeded, config-driven list of rules, each naming
//! an injection *site* (a stable string like `"seq:cover"` or
//! `"serve:pickup"`) and a fault to inject there: a panic, extra
//! latency, or a forced cooperative cancellation. The plan rides inside
//! a [`RunCtl`](crate::ctl::RunCtl); the drivers' existing barrier
//! checkpoints call [`RunCtl::fault_point`](crate::ctl::RunCtl), which
//! is a single `Option` null-check when no plan is attached — the fault
//! plane compiles to a no-op on every production path.
//!
//! Determinism: every rule draws from its own counter-indexed
//! splitmix64 stream, so the *number* of faults fired after N draws is a
//! pure function of `(seed, rule, N)` regardless of thread interleaving,
//! and `max_hits` caps the total exactly. That is what lets a chaos test
//! assert "exactly two workers were killed" instead of "some workers
//! were probably killed".
//!
//! Known sites (prefix-matched, so `"serve:pickup"` matches the
//! per-job-scoped `"serve:pickup:<alg>/<workload>"`):
//!
//! | site | checkpoint |
//! |---|---|
//! | `seq:cover` | sequential cover-loop head (also Algorithm I's workers) |
//! | `replicated:reduce` | Algorithm R's reduction step (root only) |
//! | `independent:merge` | Algorithm I, before merging worker results |
//! | `lshaped:step` | Algorithm L's worker step loop |
//! | `serve:pickup:FP` | pf-serve worker, job pickup (outside panic isolation) |
//! | `dist:pickup:LEASE` | dist worker, sub-job pickup (outside panic isolation) |
//! | `dist:send:wW` | dist transport, sub-job dispatch to worker `W` |
//! | `dist:recv:wW` | dist transport, sub-job response from worker `W` |
//!
//! A panic injected at `seq:cover`, `independent:merge`,
//! `serve:pickup`, or `dist:pickup` is safe: it either stays on one
//! thread or propagates cleanly through a scope join. Panics at
//! `replicated:reduce` or `lshaped:step` can strand sibling threads at
//! a barrier — inject latency or cancellation there instead.
//!
//! The message-plane kinds (`drop` / `dup` / `stall:MS`) are interpreted
//! by the dist transports at their `dist:send` / `dist:recv` boundaries:
//! a dropped message forces the lease to expire and fail over, a
//! duplicated one exercises exactly-once admission, and a stalled one
//! delays delivery. At a plain [`RunCtl::fault_point`](crate::ctl::RunCtl)
//! checkpoint `drop`/`dup` are inert and `stall` behaves like `latency`,
//! so arming them never corrupts a driver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What to inject when a rule fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a `"fault injected: …"` message.
    Panic,
    /// Sleep for the given duration before continuing.
    Latency(Duration),
    /// Call [`RunCtl::cancel`](crate::ctl::RunCtl::cancel) on the
    /// observing control, forcing a cooperative early stop.
    Cancel,
    /// Message-plane fault: discard the message at this site (a dist
    /// transport drops the sub-job or its response on the floor, so the
    /// lease must expire and fail over). Inert at plain checkpoints.
    Drop,
    /// Message-plane fault: deliver the message at this site twice (the
    /// coordinator's exactly-once admission must dedupe). Inert at plain
    /// checkpoints.
    Dup,
    /// Message-plane fault: stall the message at this site for the given
    /// duration before delivering it (long enough stalls expire the
    /// lease). At a plain checkpoint this behaves like `Latency`.
    Stall(Duration),
}

impl FaultKind {
    /// Whether this kind targets the message plane (`drop` / `dup` /
    /// `stall`). Transports interpret these at their send/receive
    /// boundaries; [`RunCtl::fault_point`](crate::ctl::RunCtl) treats
    /// `drop`/`dup` as inert and `stall` as latency.
    pub fn is_message_fault(&self) -> bool {
        matches!(self, FaultKind::Drop | FaultKind::Dup | FaultKind::Stall(_))
    }
}

/// One injection rule: where, what, how often, and how many times.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Site prefix this rule arms. A rule matches every checkpoint whose
    /// site name starts with this string.
    pub site: String,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that a matching draw fires (1.0 = every
    /// time).
    pub probability: f64,
    /// Hard cap on how many times this rule fires over the plan's
    /// lifetime (`u64::MAX` = unlimited).
    pub max_hits: u64,
}

impl FaultRule {
    /// A rule injecting `kind` at `site` on every draw, uncapped.
    pub fn new(site: impl Into<String>, kind: FaultKind) -> Self {
        FaultRule {
            site: site.into(),
            kind,
            probability: 1.0,
            max_hits: u64::MAX,
        }
    }

    /// A panic rule for `site`.
    pub fn panic_at(site: impl Into<String>) -> Self {
        Self::new(site, FaultKind::Panic)
    }

    /// A latency rule for `site`.
    pub fn latency_at(site: impl Into<String>, extra: Duration) -> Self {
        Self::new(site, FaultKind::Latency(extra))
    }

    /// A forced-cancellation rule for `site`.
    pub fn cancel_at(site: impl Into<String>) -> Self {
        Self::new(site, FaultKind::Cancel)
    }

    /// A message-drop rule for `site`.
    pub fn drop_at(site: impl Into<String>) -> Self {
        Self::new(site, FaultKind::Drop)
    }

    /// A message-duplication rule for `site`.
    pub fn dup_at(site: impl Into<String>) -> Self {
        Self::new(site, FaultKind::Dup)
    }

    /// A message-stall rule for `site`.
    pub fn stall_at(site: impl Into<String>, delay: Duration) -> Self {
        Self::new(site, FaultKind::Stall(delay))
    }

    /// Sets the firing probability (clamped to `[0, 1]`).
    pub fn probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Caps the total number of fires.
    pub fn max_hits(mut self, n: u64) -> Self {
        self.max_hits = n;
        self
    }
}

#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    /// Matching checkpoint visits (fired or not) — indexes the
    /// deterministic probability stream.
    draws: AtomicU64,
    /// Times this rule actually fired.
    hits: AtomicU64,
}

/// A seeded set of [`FaultRule`]s, shared (via `Arc`) by every clone of
/// the [`RunCtl`](crate::ctl::RunCtl) it is attached to.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<RuleState>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style). Rules are consulted in insertion
    /// order; the first one that fires wins the checkpoint.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(RuleState {
            rule,
            draws: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Parses the compact CLI/config grammar:
    ///
    /// ```text
    /// plan := rule (';' rule)*
    /// rule := SITE '=' kind ('@' PROB)? ('#' MAX)?
    /// kind := 'panic' | 'cancel' | 'latency:' MILLIS
    ///       | 'drop' | 'dup' | 'stall:' MILLIS
    /// ```
    ///
    /// e.g. `seq:cover=panic@0.5#3;lshaped:step=latency:5@0.2` — panic at
    /// half the sequential cover checkpoints (at most 3 times) and add
    /// 5 ms of latency to a fifth of the L-shaped step checkpoints.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site, rest) = part
                .split_once('=')
                .ok_or_else(|| format!("fault rule {part:?} has no '=' (SITE=KIND[@P][#N])"))?;
            if site.is_empty() {
                return Err(format!("fault rule {part:?} has an empty site"));
            }
            let (rest, max_hits) = match rest.split_once('#') {
                Some((head, n)) => (
                    head,
                    n.parse::<u64>()
                        .map_err(|_| format!("bad max-hits {n:?} in {part:?}"))?,
                ),
                None => (rest, u64::MAX),
            };
            let (kind_str, probability) = match rest.split_once('@') {
                Some((k, p)) => {
                    let p = p
                        .parse::<f64>()
                        .map_err(|_| format!("bad probability {p:?} in {part:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("probability {p} out of [0, 1] in {part:?}"));
                    }
                    (k, p)
                }
                None => (rest, 1.0),
            };
            let kind = match kind_str {
                "panic" => FaultKind::Panic,
                "cancel" => FaultKind::Cancel,
                "drop" => FaultKind::Drop,
                "dup" => FaultKind::Dup,
                other => {
                    let millis = |ms: &str| {
                        ms.parse::<u64>()
                            .map_err(|_| format!("bad millis {ms:?} in {part:?}"))
                    };
                    if let Some(ms) = other.strip_prefix("latency:") {
                        FaultKind::Latency(Duration::from_millis(millis(ms)?))
                    } else if let Some(ms) = other.strip_prefix("stall:") {
                        FaultKind::Stall(Duration::from_millis(millis(ms)?))
                    } else {
                        return Err(format!(
                            "unknown fault kind {other:?} (panic|cancel|latency:MS|drop|dup|stall:MS)"
                        ));
                    }
                }
            };
            plan = plan.with_rule(FaultRule {
                site: site.to_string(),
                kind,
                probability,
                max_hits,
            });
        }
        Ok(plan)
    }

    /// Whether the plan has any rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Consults the rules for a checkpoint at `site`; returns the fault
    /// to inject, if any. The *caller* applies the effect (the plan
    /// never panics or sleeps itself), which keeps this decidable in
    /// tests.
    pub fn decide(&self, site: &str) -> Option<FaultKind> {
        for rs in &self.rules {
            if !site.starts_with(rs.rule.site.as_str()) {
                continue;
            }
            let draw = rs.draws.fetch_add(1, Ordering::Relaxed);
            if rs.hits.load(Ordering::Relaxed) >= rs.rule.max_hits {
                continue;
            }
            if !self.bernoulli(&rs.rule, draw) {
                continue;
            }
            // Re-check the cap while claiming the hit so concurrent
            // draws can never overshoot max_hits.
            let prev = rs.hits.fetch_add(1, Ordering::Relaxed);
            if prev >= rs.rule.max_hits {
                rs.hits.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            return Some(rs.rule.kind.clone());
        }
        None
    }

    /// Deterministic per-rule Bernoulli draw: a pure function of the
    /// plan seed, the rule's site, and the draw index.
    fn bernoulli(&self, rule: &FaultRule, draw: u64) -> bool {
        if rule.probability >= 1.0 {
            return true;
        }
        if rule.probability <= 0.0 {
            return false;
        }
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in rule.site.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        let r = splitmix64(h ^ draw);
        ((r >> 11) as f64 / (1u64 << 53) as f64) < rule.probability
    }

    /// Total fires of every rule whose site starts with `prefix`.
    pub fn hits(&self, prefix: &str) -> u64 {
        self.rules
            .iter()
            .filter(|rs| rs.rule.site.starts_with(prefix))
            .map(|rs| rs.hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Total fires across the whole plan.
    pub fn total_hits(&self) -> u64 {
        self.rules
            .iter()
            .map(|rs| rs.hits.load(Ordering::Relaxed))
            .sum()
    }
}

/// The splitmix64 mixing step — tiny, seedable, and good enough for
/// fault scheduling (this is not a statistical RNG).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_empty());
        for _ in 0..100 {
            assert_eq!(plan.decide("seq:cover"), None);
        }
        assert_eq!(plan.total_hits(), 0);
    }

    #[test]
    fn certain_rule_fires_on_every_matching_site() {
        let plan = FaultPlan::new(7).with_rule(FaultRule::panic_at("seq:cover"));
        assert_eq!(plan.decide("seq:cover"), Some(FaultKind::Panic));
        assert_eq!(plan.decide("seq:cover"), Some(FaultKind::Panic));
        assert_eq!(plan.decide("lshaped:step"), None);
        assert_eq!(plan.hits("seq:cover"), 2);
    }

    #[test]
    fn prefix_matching_scopes_rules_to_job_fingerprints() {
        let plan =
            FaultPlan::new(7).with_rule(FaultRule::panic_at("serve:pickup:seq/gen:dalu@0.2"));
        assert_eq!(
            plan.decide("serve:pickup:seq/gen:dalu@0.2"),
            Some(FaultKind::Panic)
        );
        assert_eq!(plan.decide("serve:pickup:seq/gen:misex3@0.05"), None);
        assert_eq!(plan.decide("serve:pickup:lshaped/gen:dalu@0.2"), None);
    }

    #[test]
    fn max_hits_caps_the_total_exactly() {
        let plan = FaultPlan::new(3).with_rule(FaultRule::panic_at("x").max_hits(2));
        let fired = (0..50).filter(|_| plan.decide("x").is_some()).count();
        assert_eq!(fired, 2);
        assert_eq!(plan.total_hits(), 2);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let count = |seed: u64| {
            let plan = FaultPlan::new(seed).with_rule(FaultRule::panic_at("x").probability(0.3));
            (0..1000).filter(|_| plan.decide("x").is_some()).count()
        };
        // Deterministic: same seed, same fault schedule.
        assert_eq!(count(42), count(42));
        // Calibrated: ~300 of 1000 draws at p = 0.3.
        let n = count(42);
        assert!((200..400).contains(&n), "p=0.3 fired {n}/1000 times");
        // Seed-sensitive: a different seed gives a different schedule.
        let plan_a = FaultPlan::new(1).with_rule(FaultRule::panic_at("x").probability(0.5));
        let plan_b = FaultPlan::new(2).with_rule(FaultRule::panic_at("x").probability(0.5));
        let pattern = |p: &FaultPlan| (0..64).map(|_| p.decide("x").is_some()).collect::<Vec<_>>();
        assert_ne!(pattern(&plan_a), pattern(&plan_b));
    }

    #[test]
    fn first_firing_rule_wins() {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::panic_at("a").max_hits(1))
            .with_rule(FaultRule::cancel_at("a"));
        assert_eq!(plan.decide("a"), Some(FaultKind::Panic));
        // Panic rule exhausted; the cancel rule takes over.
        assert_eq!(plan.decide("a"), Some(FaultKind::Cancel));
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let plan = FaultPlan::parse(
            "seq:cover=panic@0.5#3;lshaped:step=latency:5@0.2;a=cancel",
            9,
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].rule.site, "seq:cover");
        assert_eq!(plan.rules[0].rule.kind, FaultKind::Panic);
        assert!((plan.rules[0].rule.probability - 0.5).abs() < 1e-12);
        assert_eq!(plan.rules[0].rule.max_hits, 3);
        assert_eq!(
            plan.rules[1].rule.kind,
            FaultKind::Latency(Duration::from_millis(5))
        );
        assert_eq!(plan.rules[2].rule.kind, FaultKind::Cancel);
        assert_eq!(plan.rules[2].rule.max_hits, u64::MAX);
    }

    #[test]
    fn parse_accepts_message_plane_kinds() {
        let plan = FaultPlan::parse(
            "dist:send:w0=drop#1;dist:recv=dup@0.5;dist:recv:w2=stall:7",
            3,
        )
        .unwrap();
        assert_eq!(plan.rules[0].rule.kind, FaultKind::Drop);
        assert_eq!(plan.rules[0].rule.max_hits, 1);
        assert_eq!(plan.rules[1].rule.kind, FaultKind::Dup);
        assert!((plan.rules[1].rule.probability - 0.5).abs() < 1e-12);
        assert_eq!(
            plan.rules[2].rule.kind,
            FaultKind::Stall(Duration::from_millis(7))
        );
        for kind in [
            plan.rules[0].rule.kind.clone(),
            plan.rules[1].rule.kind.clone(),
            plan.rules[2].rule.kind.clone(),
        ] {
            assert!(kind.is_message_fault());
        }
        assert!(!FaultKind::Panic.is_message_fault());
        assert!(!FaultKind::Latency(Duration::ZERO).is_message_fault());
    }

    #[test]
    fn message_plane_builders_and_decide() {
        let plan = FaultPlan::new(9)
            .with_rule(FaultRule::drop_at("dist:send").max_hits(1))
            .with_rule(FaultRule::dup_at("dist:recv").max_hits(1))
            .with_rule(FaultRule::stall_at("dist:recv", Duration::from_millis(2)));
        assert_eq!(plan.decide("dist:send:w1"), Some(FaultKind::Drop));
        assert_eq!(plan.decide("dist:send:w1"), None, "drop rule exhausted");
        assert_eq!(plan.decide("dist:recv:w0"), Some(FaultKind::Dup));
        assert_eq!(
            plan.decide("dist:recv:w0"),
            Some(FaultKind::Stall(Duration::from_millis(2)))
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "noequals",
            "=panic",
            "x=explode",
            "x=panic@1.5",
            "x=panic@zero",
            "x=latency:abc",
            "x=stall:abc",
            "x=panic#many",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} parsed");
        }
        // Empty spec and stray separators are fine (empty plan).
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ", 0).unwrap().is_empty());
    }
}
