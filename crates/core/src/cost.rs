//! Weighted extraction objectives — the paper's closing claim made
//! concrete.
//!
//! §6: "Even though the specific implementation of the above algorithms
//! target area minimization via literal count measures, our methods can
//! be directly applied to timing driven and low power driven synthesis
//! provided the algorithms are formulated in terms of a rectangular
//! cover problem." An [`Objective`] assigns every *variable* a weight;
//! a cube's value is the sum of its literals' weights, and the three
//! rectangle cost functions follow. The provided objectives:
//!
//! * [`Objective::area`] — uniform weight 1: exactly the paper's
//!   literal-count optimization.
//! * [`Objective::timing`] — weights grow with a signal's structural
//!   depth, so the cover preferentially collapses literals on deep
//!   (slow) cones.
//! * [`Objective::power`] — weights follow simulated switching
//!   activity, so high-toggle literals are the valuable ones to share
//!   (shared logic switches once instead of n times).

use pf_network::{stats, Network};
use pf_sop::Cube;

/// A per-variable weighting turning literal counts into a weighted
/// cover objective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Objective {
    /// Display name ("area" / "timing" / "power" / custom).
    pub name: String,
    /// Weight per variable index; variables past the end (nodes created
    /// during extraction) get [`Objective::new_lit_weight`].
    pub lit_weights: Vec<u32>,
    /// Weight of literals of variables unknown to `lit_weights`.
    pub new_lit_weight: u32,
}

impl Objective {
    /// The paper's objective: plain literal count.
    pub fn area(nw: &Network) -> Self {
        Objective {
            name: "area".to_string(),
            lit_weights: vec![1; nw.num_signals()],
            new_lit_weight: 1,
        }
    }

    /// Timing-driven: literal weight `1 + level(var)`.
    pub fn timing(nw: &Network) -> Self {
        Objective {
            name: "timing".to_string(),
            lit_weights: stats::depth_weights(nw).expect("valid network"),
            new_lit_weight: 1,
        }
    }

    /// Power-driven: literal weight from simulated switching activity.
    pub fn power(nw: &Network, rounds: usize, seed: u64) -> Self {
        Objective {
            name: "power".to_string(),
            lit_weights: stats::activity_weights(nw, rounds, seed).expect("valid network"),
            new_lit_weight: 1,
        }
    }

    /// Weight of one variable.
    #[inline]
    pub fn var_weight(&self, var_index: u32) -> u32 {
        self.lit_weights
            .get(var_index as usize)
            .copied()
            .unwrap_or(self.new_lit_weight)
    }

    /// Weighted size of a cube (Σ literal weights).
    pub fn cube_weight(&self, cube: &Cube) -> u32 {
        cube.iter().map(|l| self.var_weight(l.var().index())).sum()
    }

    /// Cost of the replacement cube `cok·X` a chosen row adds.
    pub fn row_cost(&self, cokernel: &Cube) -> i64 {
        self.cube_weight(cokernel) as i64 + self.new_lit_weight as i64
    }

    /// Cost of one kernel cube in the extracted node's body.
    pub fn col_cost(&self, cube: &Cube) -> i64 {
        self.cube_weight(cube) as i64
    }

    /// Weighted literal count of a whole network under this objective.
    pub fn network_cost(&self, nw: &Network) -> u64 {
        nw.node_ids()
            .map(|n| {
                nw.func(n)
                    .iter()
                    .map(|c| self.cube_weight(c) as u64)
                    .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{extract_kernels, ExtractConfig};
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};
    use pf_sop::Lit;

    #[test]
    fn area_objective_is_literal_count() {
        let (nw, _) = example_1_1();
        let area = Objective::area(&nw);
        assert_eq!(area.network_cost(&nw) as usize, nw.literal_count());
        let c = Cube::from_lits([Lit::pos(0), Lit::pos(1)]);
        assert_eq!(area.cube_weight(&c), 2);
        assert_eq!(area.row_cost(&c), 3);
    }

    #[test]
    fn timing_weights_deep_signals_more() {
        let (nw, ids) = example_1_1();
        let t = Objective::timing(&nw);
        // Nodes are level 1, inputs level 0.
        assert!(t.var_weight(ids.f) > t.var_weight(ids.a));
    }

    #[test]
    fn unknown_vars_get_default_weight() {
        let (nw, _) = example_1_1();
        let o = Objective::area(&nw);
        assert_eq!(o.var_weight(10_000), 1);
    }

    #[test]
    fn weighted_extraction_reduces_its_own_objective() {
        for make in [
            Objective::area as fn(&Network) -> Objective,
            Objective::timing as fn(&Network) -> Objective,
        ] {
            let (mut nw, _) = example_1_1();
            let original = nw.clone();
            let obj = make(&nw);
            let before = obj.network_cost(&nw);
            let cfg = ExtractConfig {
                objective: Some(obj.clone()),
                ..ExtractConfig::default()
            };
            let report = extract_kernels(&mut nw, &[], &cfg);
            let after = obj.network_cost(&nw);
            assert!(after < before, "{}: {} -> {}", obj.name, before, after);
            assert_eq!(before as i64 - after as i64, report.total_value);
            assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        }
    }

    #[test]
    fn power_objective_runs_end_to_end() {
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let obj = Objective::power(&nw, 8, 7);
        let before = obj.network_cost(&nw);
        let cfg = ExtractConfig {
            objective: Some(obj.clone()),
            ..ExtractConfig::default()
        };
        extract_kernels(&mut nw, &[], &cfg);
        assert!(obj.network_cost(&nw) <= before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn objectives_can_disagree_on_the_best_cover() {
        // A network with real depth: node literals weigh more than input
        // literals under the timing objective, so the weighted value of
        // the same cover differs from the area value.
        let mk = || {
            let mut nw = pf_network::Network::new();
            let a = nw.add_input("a").unwrap();
            let b = nw.add_input("b").unwrap();
            let c = nw.add_input("c").unwrap();
            let d = nw.add_input("d").unwrap();
            let sop = |cubes: &[&[u32]]| {
                pf_sop::Sop::from_cubes(
                    cubes
                        .iter()
                        .map(|cs| Cube::from_lits(cs.iter().map(|&v| Lit::pos(v)))),
                )
            };
            let g = nw.add_node("g", sop(&[&[a, b], &[c]])).unwrap(); // level 1
                                                                      // f over g (level-2 literals) with an extractable kernel.
            let f = nw
                .add_node("f", sop(&[&[g, a, c], &[g, a, d], &[g, b, c], &[g, b, d]]))
                .unwrap();
            nw.mark_output(f).unwrap();
            nw
        };
        let mut a_nw = mk();
        let obj_a = Objective::area(&a_nw);
        let ra = extract_kernels(
            &mut a_nw,
            &[],
            &ExtractConfig {
                objective: Some(obj_a),
                ..ExtractConfig::default()
            },
        );
        let mut t_nw = mk();
        let obj_t = Objective::timing(&t_nw);
        let rt = extract_kernels(
            &mut t_nw,
            &[],
            &ExtractConfig {
                objective: Some(obj_t),
                ..ExtractConfig::default()
            },
        );
        assert!(ra.extractions >= 1 && rt.extractions >= 1);
        // Weighted values differ even when the chosen kernels coincide.
        assert_ne!(ra.total_value, rt.total_value);
    }
}
