//! A miniature synthesis script, for Table 1's measurement: how much of
//! total synthesis time goes to algebraic factorization.
//!
//! SIS scripts (script / script.rugged) interleave sweeps, eliminates,
//! simplification and repeated `gkx`/`gcx` factorization passes. This
//! module reproduces that *structure* — per round: sweep → eliminate →
//! kernel extraction → cube extraction — with per-phase timers, so the
//! bench harness can report the factorization share exactly like the
//! paper's Table 1 (61.45% on average there).

use crate::report::ExtractReport;
use crate::seq::{extract_kernels, ExtractConfig};
use pf_kcmatrix::SearchConfig;
use pf_network::resub::resubstitute;
use pf_network::transform::{eliminate_node, eliminate_value, simplify_all, sweep};
use pf_network::Network;
use std::time::{Duration, Instant};

/// Options for [`run_script`].
#[derive(Clone, Debug)]
pub struct ScriptConfig {
    /// Number of sweep/eliminate/factor rounds.
    pub rounds: usize,
    /// Eliminate nodes whose literal-count increase is at most this
    /// (SIS `eliminate` threshold; 0 collapses value-neutral nodes).
    pub eliminate_threshold: isize,
    /// Extraction options for the factorization passes.
    pub extract: ExtractConfig,
}

impl Default for ScriptConfig {
    fn default() -> Self {
        // Elimination can merge nodes into large functions; cap the
        // per-node kernel enumeration and the rectangle-search budget so
        // script runs stay minutes, not hours (SIS caps its `gkx` effort
        // the same way).
        ScriptConfig {
            rounds: 3,
            eliminate_threshold: 0,
            extract: ExtractConfig {
                kernel: pf_sop::kernel::KernelConfig {
                    max_pairs: 2048,
                    ..Default::default()
                },
                search: SearchConfig {
                    budget: 200_000,
                    ..Default::default()
                },
                ..ExtractConfig::default()
            },
        }
    }
}

/// Timing breakdown of one script run (the paper's Table 1 columns).
#[derive(Clone, Debug, Default)]
pub struct ScriptReport {
    /// Literal count before the script.
    pub lc_before: usize,
    /// Literal count after.
    pub lc_after: usize,
    /// Number of times factorization was invoked.
    pub factor_invocations: usize,
    /// Total time inside factorization.
    pub factor_time: Duration,
    /// Total script wall-clock time.
    pub total_time: Duration,
    /// Reports of the individual factorization passes.
    pub factor_reports: Vec<ExtractReport>,
}

impl ScriptReport {
    /// The share of synthesis time spent factoring (Table 1's point).
    pub fn factor_fraction(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.factor_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }
}

/// Runs the mini script on the network, in place.
pub fn run_script(nw: &mut Network, cfg: &ScriptConfig) -> ScriptReport {
    let start = Instant::now();
    let mut report = ScriptReport {
        lc_before: nw.literal_count(),
        ..Default::default()
    };

    for round in 0..cfg.rounds {
        // sweep: drop dead logic and pass-through wires.
        let _ = sweep(nw);

        // simplify: two-level Boolean cleanup of each node.
        let _ = simplify_all(nw);

        // eliminate: collapse nodes whose elimination does not grow LC.
        let victims: Vec<_> = nw
            .node_ids()
            .filter(|&n| !nw.outputs().contains(&n))
            .filter(|&n| matches!(eliminate_value(nw, n), Some(v) if v <= cfg.eliminate_threshold))
            .collect();
        for v in victims {
            if nw.func(v).is_zero() {
                continue;
            }
            let _ = eliminate_node(nw, v);
        }
        let _ = sweep(nw);

        // gkx: kernel extraction (timed as "factorization").
        let t = Instant::now();
        let kx_cfg = ExtractConfig {
            name_prefix: format!("s{round}_kx_"),
            ..cfg.extract.clone()
        };
        let r = extract_kernels(nw, &[], &kx_cfg);
        report.factor_time += t.elapsed();
        report.factor_invocations += 1;
        report.factor_reports.push(r);

        // gcx: common-cube extraction on the cube–literal matrix.
        let t = Instant::now();
        let cx_cfg = crate::cx::CubeExtractConfig {
            name_prefix: format!("s{round}_cx_"),
            ..Default::default()
        };
        let r = crate::cx::extract_common_cubes(nw, &[], &cx_cfg);
        report.factor_time += t.elapsed();
        report.factor_invocations += 1;
        report.factor_reports.push(r);

        // resub: share divisors that already exist as nodes.
        let _ = resubstitute(nw);
    }
    let _ = sweep(nw);

    report.lc_after = nw.literal_count();
    report.total_time = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};

    #[test]
    fn script_reduces_and_preserves_function() {
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let report = run_script(&mut nw, &ScriptConfig::default());
        assert_eq!(report.lc_before, 33);
        assert!(report.lc_after <= 22);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn invocation_count_is_two_per_round() {
        let (mut nw, _) = example_1_1();
        let cfg = ScriptConfig {
            rounds: 4,
            ..ScriptConfig::default()
        };
        let report = run_script(&mut nw, &cfg);
        assert_eq!(report.factor_invocations, 8);
        assert_eq!(report.factor_reports.len(), 8);
    }

    #[test]
    fn factor_fraction_is_between_zero_and_one() {
        let (mut nw, _) = example_1_1();
        let report = run_script(&mut nw, &ScriptConfig::default());
        let f = report.factor_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
        assert!(report.factor_time <= report.total_time);
    }

    #[test]
    fn second_round_is_idempotent_on_converged_network() {
        let (mut nw, _) = example_1_1();
        run_script(&mut nw, &ScriptConfig::default());
        let lc = nw.literal_count();
        let again = run_script(
            &mut nw,
            &ScriptConfig {
                rounds: 1,
                ..Default::default()
            },
        );
        assert!(again.lc_after <= lc);
    }
}
