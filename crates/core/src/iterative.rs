//! Iterative repartitioning — the ProperPART idea ([3] in the paper,
//! De & Banerjee, ICPP'94) layered over Algorithm I.
//!
//! The paper's related-work section: "portions of a circuit are
//! repartitioned and resynthesized along different sets of processors …
//! the overall synthesis quality is significantly improved by this
//! iterative repartitioning and resynthesis approach over the single
//! partitioned approach without any interactions." Each round here runs
//! Algorithm I under a different partitioner seed, then merges the
//! duplicated divisors the partition boundaries created (algebraic
//! resubstitution + sweep). Rectangles invisible under one partition are
//! visible under another, so quality approaches the sequential result
//! while each round stays embarrassingly parallel.
//!
//! Pooling: each round's Algorithm-I workers run their own nested
//! `extract_kernels`, so with `search.par_threads ≥ 1` every worker owns
//! a persistent `SearchPool` for the round (created in that run's pool
//! phase, dropped with its engine). Rounds re-partition the circuit, so
//! no cross-round search state is carried — only the scratch reuse and
//! spawn amortization within each round's cover loop.

use crate::independent::{independent_extract, IndependentConfig};
use crate::report::{ExtractReport, PhaseTiming};
use pf_network::resub::resubstitute;
use pf_network::transform::sweep;
use pf_network::Network;
use pf_partition::PartitionConfig;
use std::time::{Duration, Instant};

/// Options for [`iterative_extract`].
#[derive(Clone, Debug)]
pub struct IterativeConfig {
    /// Number of partition/extract/merge rounds.
    pub rounds: usize,
    /// The per-round Algorithm I configuration; the partitioner seed is
    /// varied per round.
    pub inner: IndependentConfig,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            rounds: 3,
            inner: IndependentConfig::default(),
        }
    }
}

/// Runs `rounds` of repartition → independent extraction → resub/sweep.
pub fn iterative_extract(nw: &mut Network, cfg: &IterativeConfig) -> ExtractReport {
    let mut lane = cfg.inner.extract.trace.lane("iterative");
    let start = Instant::now();
    let lc_before = nw.literal_count();
    let mut extractions = 0usize;
    let mut total_value = 0i64;
    let mut budget_exhausted = false;
    let mut timed_out = false;
    let mut cancelled = false;
    let mut extract_time = Duration::ZERO;

    for round in 0..cfg.rounds.max(1) {
        let mut round_cfg = cfg.inner.clone();
        // A different min-cut seed exposes different cross-boundary
        // rectangles each round.
        round_cfg.partition = PartitionConfig {
            seed: cfg.inner.partition.seed.wrapping_add(round as u64 * 0x9E37),
            ..cfg.inner.partition.clone()
        };
        round_cfg.extract.name_prefix = format!("r{round}_{}", cfg.inner.extract.name_prefix);
        let before_round = nw.literal_count();
        // One driver-level span per round: the nested Algorithm-I run
        // adds its own partition/extract/merge spans on separate lanes.
        let round_span = lane.start("extract");
        let rep = independent_extract(nw, &round_cfg);
        lane.end_with(round_span, || vec![("round", round as i64)]);
        extract_time += rep.elapsed;
        extractions += rep.extractions;
        total_value += rep.total_value;
        budget_exhausted |= rep.budget_exhausted;
        timed_out |= rep.timed_out;
        cancelled |= rep.cancelled;
        // Merge duplicated kernels across the old partition boundary.
        let cleanup_span = lane.start("cleanup");
        let _ = resubstitute(nw);
        let _ = sweep(nw);
        lane.end_with(cleanup_span, || vec![("round", round as i64)]);
        if timed_out || cancelled {
            break; // the shared RunCtl stopped the round early
        }
        if nw.literal_count() >= before_round && rep.extractions == 0 {
            break; // converged
        }
    }

    let elapsed = start.elapsed();
    ExtractReport {
        lc_before,
        lc_after: nw.literal_count(),
        extractions,
        total_value,
        elapsed,
        budget_exhausted,
        timed_out,
        cancelled,
        phases: vec![
            // `extract` is the summed Algorithm-I round time; everything
            // else (resub + sweep between rounds, loop overhead) is the
            // cleanup phase, so the two always cover `elapsed`.
            PhaseTiming::new("extract", extract_time.min(elapsed)),
            PhaseTiming::new("cleanup", elapsed.saturating_sub(extract_time)),
        ],
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{extract_kernels, ExtractConfig};
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};
    use pf_workloads::{generate, profile_by_name, scale_profile, CircuitProfile};

    #[test]
    fn improves_on_single_round_partitioning() {
        // The claim of [3]: iterative repartitioning beats one-shot
        // independent partitioning. Checked on a generated circuit with
        // cross-partition sharing.
        let profile = scale_profile(&profile_by_name("dalu").unwrap(), 0.08);
        let nw = generate(&profile);

        let mut single = nw.clone();
        let one = independent_extract(
            &mut single,
            &IndependentConfig {
                procs: 4,
                ..IndependentConfig::default()
            },
        );
        let mut multi = nw.clone();
        let iter = iterative_extract(
            &mut multi,
            &IterativeConfig {
                rounds: 3,
                inner: IndependentConfig {
                    procs: 4,
                    ..IndependentConfig::default()
                },
            },
        );
        assert!(
            iter.lc_after <= one.lc_after,
            "iterative {} vs single {}",
            iter.lc_after,
            one.lc_after
        );
        assert!(equivalent_random(&nw, &multi, &EquivConfig::default()).unwrap());
        assert!(multi.validate().is_ok());
    }

    #[test]
    fn never_beats_the_sequential_optimum_but_approaches_it() {
        let nw = generate(&CircuitProfile::small("iter", 33));
        let mut seq_nw = nw.clone();
        let seq = extract_kernels(&mut seq_nw, &[], &ExtractConfig::default());
        let mut it_nw = nw.clone();
        let it = iterative_extract(
            &mut it_nw,
            &IterativeConfig {
                rounds: 4,
                inner: IndependentConfig {
                    procs: 3,
                    ..IndependentConfig::default()
                },
            },
        );
        assert!(it.lc_after as f64 >= seq.lc_after as f64 * 0.98);
        assert!(equivalent_random(&nw, &it_nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn converges_and_reports_consistently() {
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let rep = iterative_extract(&mut nw, &IterativeConfig::default());
        assert!(rep.lc_after <= rep.lc_before);
        assert!(rep.elapsed.as_nanos() > 0);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn single_round_equals_algorithm_i_plus_cleanup() {
        let (mut a, _) = example_1_1();
        let (mut b, _) = example_1_1();
        iterative_extract(
            &mut a,
            &IterativeConfig {
                rounds: 1,
                inner: IndependentConfig {
                    procs: 2,
                    ..IndependentConfig::default()
                },
            },
        );
        independent_extract(
            &mut b,
            &IndependentConfig {
                procs: 2,
                ..IndependentConfig::default()
            },
        );
        let _ = resubstitute(&mut b);
        let _ = sweep(&mut b);
        assert_eq!(a.literal_count(), b.literal_count());
    }
}
