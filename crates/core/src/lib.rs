#![warn(missing_docs)]

//! # pf-core — sequential and parallel kernel extraction
//!
//! The paper's primary contribution, reimplemented end to end:
//!
//! * [`seq`] — the sequential greedy rectangle-cover loop equivalent to
//!   SIS's `gkx` kernel extraction: build the KC matrix, extract the
//!   maximum-valued rectangle, divide the affected nodes, repeat. This is
//!   the baseline every speedup in the paper is measured against.
//! * [`replicated`] — **Algorithm R** (§3): every worker holds a replica
//!   of the circuit and matrix; the rectangle search is divided by
//!   leftmost column; a reduction picks the global best; every replica
//!   applies it; barrier; repeat. Same search path as sequential ⇒ same
//!   quality, poor scalability.
//! * [`independent`] — **Algorithm I** (§4): min-cut partition the
//!   circuit, extract on each part independently, merge. Fast and
//!   memory-scalable, loses the rectangles that span partitions.
//! * [`lshaped`] — **Algorithm L** (§5): disjoint kernel-cube ownership
//!   plus overlapping `B_ij` blocks form L-shaped per-processor
//!   matrices; the shared cube-state protocol (value / trueval / owner,
//!   Table 5) and the kernel-cost-zero division re-check (§5.3) preserve
//!   quality without synchronizing the search.
//! * [`model`] — the analytic speedup model of Equation 3.
//! * [`script`] — a miniature synthesis script (sweep / simplify /
//!   eliminate / repeated extraction / resub) used to reproduce Table 1's
//!   "fraction of time spent factoring".
//!
//! Beyond the paper's core (each documented in DESIGN.md §8):
//!
//! * [`cx`] — common-**cube** extraction on the cube–literal matrix (§2
//!   names it as the sibling rectangle-cover problem) and its
//!   Algorithm-I-style partitioned variant;
//! * [`lshaped_cx`] — Algorithm L transplanted onto that second cover
//!   problem, realizing §6's "directly applied … provided the algorithms
//!   are formulated in terms of a rectangular cover problem";
//! * [`cost`] — area / timing-driven / power-driven covering objectives
//!   (§6's closing remark) via pluggable rectangle cost models;
//! * [`iterative`] — ProperPART-style iterative repartitioning (the
//!   paper's reference [3]) layered over Algorithm I;
//! * [`fault`] — a seeded, deterministic fault-injection plane riding on
//!   [`ctl`]'s barrier checkpoints (panic / latency / forced cancel at
//!   named sites), compiled to a no-op when no plan is attached;
//! * [`trace`] — a span/event recorder threaded through every driver
//!   (per-worker ring-buffer lanes, phase + per-pass search spans),
//!   a single branch per hook when disarmed, like [`fault`].

pub mod cached;
pub mod cost;
pub mod ctl;
pub mod cx;
pub mod dist;
pub mod fault;
pub mod independent;
pub mod iterative;
pub mod lshaped;
pub mod lshaped_cx;
pub mod merge;
pub mod model;
pub mod replicated;
pub mod report;
pub mod script;
pub mod seq;
pub mod trace;

pub use cached::{extract_kernels_cached, run_cached, try_replay, CacheEvents, CacheHandle};
pub use cost::Objective;
pub use ctl::{RunCtl, StopReason};
pub use cx::{extract_common_cubes, independent_extract_cubes, CubeExtractConfig};
pub use dist::{
    block_base_for, distributed_extract, execute_sub_job, frontier_nodes, DistConfig, DistEvent,
    DistStats, DistTransport, LocalTransport, SubJob, SubKind,
};
pub use fault::{FaultKind, FaultPlan, FaultRule};
pub use independent::{independent_extract, IndependentConfig};
pub use iterative::{iterative_extract, IterativeConfig};
pub use lshaped::{lshaped_extract, LShapedConfig};
pub use lshaped_cx::{lshaped_extract_cubes, LShapedCxConfig};
pub use model::{predicted_speedup, SparsityFactors};
pub use pf_kcmatrix::{CeilingUpdate, SearchPool};
pub use replicated::{replicated_extract, ReplicatedConfig};
pub use report::{ExtractReport, PhaseTiming};
pub use seq::{extract_kernels, extract_kernels_pooled, ExtractConfig};
pub use trace::{Lane, Span, Trace, TraceEvent, Tracer};
