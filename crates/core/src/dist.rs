//! Distributed Algorithm I — leased partition sub-jobs with failover
//! and degraded-quality boundary recovery.
//!
//! The coordinator partitions the circuit with `pf-partition`, then
//! dispatches each part as a **leased** sub-job over a [`DistTransport`]
//! (in-process worker threads here; `pf-serve`'s TCP front end in
//! `crates/serve`). A lease is a deadline-bounded claim on a unit of
//! work: workers send heartbeats while they run, each heartbeat extends
//! the lease, and a lease whose deadline passes without a result is
//! **expired** and re-dispatched to a surviving worker (failover). A
//! unit that keeps expiring is split in two and re-leased (work
//! stealing), so an oversized partition cannot stall the barrier; a
//! unit that exhausts its attempts runs inline on the coordinator so a
//! distributed run never does worse than the single-process driver.
//!
//! After every partition lands, a **boundary-recovery** stage runs in
//! two sharded, leased phases. The *frontier* phase re-extracts over the
//! nodes the partitioner cut (plus the nodes the partition phase
//! created), split into [`DistConfig::recovery_shards`] disjoint target
//! shards. The *resub* phase then collapses Algorithm I's duplicated
//! factor nodes: the duplicate candidates (frontier ∪ created nodes)
//! are sharded as *divisor* sets, each lease runs a divisor-restricted
//! incremental resubstitution (`pf_network::resub`) against the same
//! merged snapshot, and the coordinator applies the shard rewrites in
//! deterministic lease order (first claim wins, cycle-guarded) before a
//! seeded local fixpoint catches cross-shard chains; a sweep then clears
//! the dead duplicates. Recovery shards ride the same lease machinery as
//! partitions (heartbeats, expiry failover, inline fallback, exactly one
//! admitted result per lease); `recovery_shards = 1` is the legacy
//! serial path. If any recovery shard dies past its retry budget the
//! whole stage aborts: the coordinator keeps the already-correct
//! Algorithm-I-quality result (no resub, no sweep) and records
//! [`ExtractReport::degraded`] instead of failing the job.
//!
//! Recovery is skipped outright — no leases, no resub, no sweep — when
//! the frontier is empty (single effective partition): nothing was cut,
//! so there is nothing to recover.
//!
//! ## Fault sites
//!
//! | site | where |
//! |------|-------|
//! | `dist:pickup:LEASE` | worker pickup, *outside* panic isolation — a `panic` rule kills the worker thread ([`DistEvent::WorkerDied`]) |
//! | `dist:work` | inside a partition sub-job's panic isolation — a `panic` rule fails that lease only |
//! | `dist:recover:frontier` | inside a frontier-recovery shard's panic isolation (a `dist:recover` rule prefix-matches both recovery sites) |
//! | `dist:recover:resub` | inside a resub-recovery shard's panic isolation |
//! | `dist:send:wW` | coordinator → worker W: `drop` loses the job, `dup` dispatches it twice, `stall:MS` delays it |
//! | `dist:recv:wW` | worker W → coordinator: `drop` loses the result, `dup` delivers it twice, `stall:MS` delays it |
//!
//! The coordinator admits at most one result per lease (late or
//! duplicated deliveries are counted as stale and ignored), so every
//! message-plane fault resolves to either a normal completion or an
//! expiry-plus-failover — never a double merge.

use crate::fault::{splitmix64, FaultKind, FaultPlan};
use crate::merge::{merge_worker_results, remap_sop, NewNode, WorkerResult};
use crate::report::{ExtractReport, PhaseTiming};
use crate::seq::{extract_kernels, ExtractConfig};
use pf_network::resub::{resubstitute_scoped, ResubScope};
use pf_network::transform::sweep;
use pf_network::{Network, SignalId};
use pf_partition::{partition_network, Partition, PartitionConfig};
use pf_sop::fx::FxHashMap;
use pf_sop::fx::FxHashSet;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a leased sub-job does with its targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubKind {
    /// Partition extraction: extract kernels from the unit's targets.
    Extract,
    /// Frontier-recovery shard: re-extract over a disjoint slice of the
    /// frontier ∪ created nodes the partition phase left behind.
    Frontier,
    /// Resub-recovery shard: divisor-restricted incremental
    /// resubstitution — `targets` is the shard's divisor set; any node
    /// of the snapshot may be rewritten.
    Resub,
}

impl SubKind {
    /// Whether this kind belongs to the boundary-recovery stage (its
    /// abandonment degrades quality instead of falling back inline).
    pub fn is_recovery(self) -> bool {
        !matches!(self, SubKind::Extract)
    }

    /// The fault-injection site evaluated inside the sub-job's panic
    /// isolation. A `dist:recover` rule prefix-matches both recovery
    /// kinds.
    pub fn fault_site(self) -> &'static str {
        match self {
            SubKind::Extract => "dist:work",
            SubKind::Frontier => "dist:recover:frontier",
            SubKind::Resub => "dist:recover:resub",
        }
    }

    /// Stable wire name (the `sub` op's `kind` field).
    pub fn as_str(self) -> &'static str {
        match self {
            SubKind::Extract => "extract",
            SubKind::Frontier => "frontier",
            SubKind::Resub => "resub",
        }
    }

    /// Parses a wire name back; rejects unknown kinds.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "extract" => Some(SubKind::Extract),
            "frontier" => Some(SubKind::Frontier),
            "resub" => Some(SubKind::Resub),
            _ => None,
        }
    }
}

/// One leased unit of work: extract kernels from (or resubstitute the
/// divisors in) `targets` against a snapshot of the network.
#[derive(Clone)]
pub struct SubJob {
    /// Lease id — unique per dispatch attempt, never reused. Also keys
    /// the sub-job's private new-node id block and name prefix, so a
    /// re-dispatched or split unit can never collide with a stale
    /// attempt in the merge.
    pub lease: u64,
    /// The nodes this unit optimizes (divisors for [`SubKind::Resub`]).
    pub targets: Arc<Vec<SignalId>>,
    /// Snapshot the worker clones and optimizes locally.
    pub base: Arc<Network>,
    /// Extraction options (the name prefix is extended with the lease
    /// id automatically).
    pub extract: ExtractConfig,
    /// What the sub-job does with its targets.
    pub kind: SubKind,
}

impl std::fmt::Debug for SubJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubJob")
            .field("lease", &self.lease)
            .field("targets", &self.targets.len())
            .field("kind", &self.kind)
            .finish()
    }
}

/// What a transport reports back to the coordinator.
#[derive(Clone, Debug)]
pub enum DistEvent {
    /// A sub-job finished; `result` is in the lease's private id space.
    Completed {
        /// The lease the result answers.
        lease: u64,
        /// Worker that ran it.
        worker: usize,
        /// The diff to merge.
        result: Box<WorkerResult>,
        /// The worker-local extraction report.
        report: Box<ExtractReport>,
    },
    /// A sub-job panicked inside the worker's panic isolation.
    Failed {
        /// The lease that failed.
        lease: u64,
        /// Worker that ran it.
        worker: usize,
        /// Panic payload (for logs).
        message: String,
    },
    /// A worker is still executing the lease; extends its deadline.
    Heartbeat {
        /// The lease being worked on.
        lease: u64,
    },
    /// A worker thread died (its leases must fail over).
    WorkerDied {
        /// The dead worker's index.
        worker: usize,
    },
}

/// How the coordinator talks to its workers. Implementations deliver
/// [`SubJob`]s to workers and stream [`DistEvent`]s back.
pub trait DistTransport {
    /// Number of worker slots (dead workers still count).
    fn workers(&self) -> usize;
    /// Whether worker `w` is believed alive.
    fn alive(&self, w: usize) -> bool;
    /// Hands a sub-job to worker `w`. An error means the job was
    /// certainly not delivered (the lease should fail over immediately);
    /// `Ok` means it was *sent* — delivery may still be lost, which the
    /// lease deadline catches.
    fn dispatch(&self, w: usize, job: SubJob) -> Result<(), String>;
    /// Waits up to `timeout` for the next event.
    fn poll(&self, timeout: Duration) -> Option<DistEvent>;
}

/// Counters the coordinator keeps; returned next to the report so
/// `pf-serve` can fold them into its metrics registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Leases created (initial dispatches + failovers + splits + inline
    /// fallbacks).
    pub leases_issued: u64,
    /// Leases that produced the admitted result.
    pub leases_resolved: u64,
    /// Leases that expired (deadline, worker death, failed sub-job, or
    /// run wind-down) before resolving.
    pub leases_expired: u64,
    /// Leases created by splitting a repeatedly-expiring unit in two
    /// (work stealing).
    pub leases_stolen: u64,
    /// Re-dispatches after an expiry (includes inline fallbacks).
    pub failovers: u64,
    /// Units whose optimization was abandoned past the retry budget
    /// (the result stays correct; quality degrades).
    pub degraded_jobs: u64,
    /// Rectangles recovered by the boundary-recovery frontier shards.
    pub recovery_rects: u64,
    /// Results that arrived for a lease no longer active (late after
    /// expiry, or duplicated by the message plane) and were ignored.
    pub stale_results: u64,
    /// Shard rewrites the recovery merge dropped because another shard
    /// already claimed the node or applying them would close a cycle
    /// (the coordinator's seeded fixpoint re-derives what still helps).
    pub recovery_conflicts: u64,
}

impl DistStats {
    /// The lease balance identity: at quiescence every issued lease
    /// either resolved or expired.
    pub fn balanced(&self) -> bool {
        self.leases_issued == self.leases_resolved + self.leases_expired
    }
}

/// Options for [`distributed_extract`].
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Number of partitions (0 = one per transport worker).
    pub parts: usize,
    /// Extraction options for every sub-job (the coordinator's `ctl`
    /// also governs the supervision loop).
    pub extract: ExtractConfig,
    /// Partitioner options.
    pub partition: PartitionConfig,
    /// Lease deadline; each heartbeat re-arms it.
    pub lease_timeout: Duration,
    /// How long one supervision-loop poll blocks.
    pub poll_interval: Duration,
    /// Re-dispatch attempts per unit before giving up on the transport
    /// (partition units then run inline; the recovery unit degrades).
    pub max_attempts: u32,
    /// Attempts after which a multi-target unit is split in two and
    /// re-leased instead of re-dispatched whole.
    pub split_after: u32,
    /// Whether to run the boundary-recovery phase.
    pub recovery: bool,
    /// Recovery shards per recovery phase (0 = one per transport
    /// worker, capped at the host's available parallelism). `1`
    /// reproduces the legacy serial recovery lease.
    pub recovery_shards: usize,
    /// Base backoff before a failover re-dispatch (jittered up to 2x).
    pub retry_backoff: Duration,
    /// Seed for the failover jitter.
    pub seed: u64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            parts: 0,
            extract: ExtractConfig::default(),
            partition: PartitionConfig::default(),
            lease_timeout: Duration::from_millis(2_000),
            poll_interval: Duration::from_millis(5),
            max_attempts: 3,
            split_after: 2,
            recovery: true,
            recovery_shards: 0,
            retry_backoff: Duration::from_millis(2),
            seed: 0xD15_7EA5E,
        }
    }
}

/// The private new-node id block for a lease. Worker clones allocate
/// new ids from the snapshot's tail; shifting each lease into its own
/// block keeps retried, split, and duplicated attempts collision-free
/// in [`merge_worker_results`].
pub fn block_base_for(lease: u64) -> u32 {
    (lease as u32 % 400 + 1) * 10_000_000
}

/// The nodes the partitioner cut: every node with a neighbor in another
/// part. These are the rows Algorithm I's per-part matrices can't see
/// across, so they are exactly where the dropped rectangles live.
pub fn frontier_nodes(p: &Partition) -> Vec<SignalId> {
    let g = &p.graph;
    let mut out = Vec::new();
    for v in 0..g.len() {
        let pv = p.assignment[v];
        if g.neighbors(v).iter().any(|&(u, _)| p.assignment[u] != pv) {
            out.push(g.signal(v));
        }
    }
    out
}

/// Runs one sub-job the way a worker does: clone the snapshot, run the
/// kind's optimization, and diff the clone back into a [`WorkerResult`]
/// in the lease's private id space. Shared by the in-process transport,
/// the coordinator's inline fallback, and `pf-serve`'s remote worker
/// mode.
///
/// [`SubKind::Extract`] and [`SubKind::Frontier`] extract kernels from
/// the unit's targets and diff targets plus new nodes. A
/// [`SubKind::Resub`] shard instead runs a divisor-restricted
/// incremental resubstitution: the kernels the partitioner cut were
/// usually extracted *separately* by each part (Algorithm I's
/// duplicated kernels), so after the merge the dropped cross-partition
/// rectangles live as duplicate factor nodes, not as unextracted
/// kernels — resub collapses the duplicates and rewrites the rows one
/// part left unfactored over the other part's factor node. Because
/// resub may rewrite any node, a resub result diffs the whole snapshot
/// (it never creates nodes).
pub fn execute_sub_job(job: &SubJob) -> (WorkerResult, ExtractReport) {
    job.extract.ctl.fault_point(job.kind.fault_site());
    let mut local = (*job.base).clone();
    let n0 = local.num_signals() as u32;
    let report = match job.kind {
        SubKind::Extract | SubKind::Frontier => {
            let worker_cfg = ExtractConfig {
                name_prefix: format!("d{}_{}", job.lease, job.extract.name_prefix),
                ..job.extract.clone()
            };
            extract_kernels(&mut local, &job.targets, &worker_cfg)
        }
        SubKind::Resub => {
            let start = Instant::now();
            let lc_before = local.literal_count();
            let scope = ResubScope {
                divisors: Some(job.targets.as_ref()),
                seeds: None,
            };
            let resub = resubstitute_scoped(&mut local, &scope).unwrap_or_default();
            ExtractReport {
                lc_before,
                lc_after: local.literal_count(),
                elapsed: start.elapsed(),
                resub_pairs_considered: resub.pairs_considered,
                resub_pairs_divided: resub.pairs_divided,
                resub_worklist_rounds: resub.worklist_rounds,
                ..ExtractReport::default()
            }
        }
    };
    let base = block_base_for(job.lease);
    let id_map: FxHashMap<u32, u32> = (n0..local.num_signals() as u32)
        .map(|id| (id, base + (id - n0)))
        .collect();
    let mut wr = WorkerResult::default();
    let diff_nodes: Vec<SignalId> = if job.kind == SubKind::Resub {
        job.base.node_ids().collect()
    } else {
        job.targets.as_ref().clone()
    };
    for node in diff_nodes {
        if local.func(node) != job.base.func(node) {
            wr.rewritten
                .push((node, remap_sop(local.func(node), &id_map)));
        }
    }
    for id in n0..local.num_signals() as u32 {
        wr.new_nodes.push(NewNode {
            worker_id: id_map[&id],
            name: local.name(id).to_string(),
            func: remap_sop(local.func(id), &id_map),
        });
    }
    (wr, report)
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "worker panic".to_string()
    }
}

// ---------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------

enum WorkerMsg {
    Job(Box<SubJob>),
    Die,
}

/// Announces a worker thread's death to the coordinator. Armed for the
/// whole worker loop; only a clean channel-closed exit disarms it, so
/// any panic (injected at `dist:pickup`, or a [`LocalTransport::kill_worker`]
/// poison pill) surfaces as [`DistEvent::WorkerDied`].
struct DeathGuard {
    w: usize,
    tx: Sender<DistEvent>,
    alive: Arc<AtomicBool>,
    armed: bool,
}

impl Drop for DeathGuard {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
        if self.armed {
            let _ = self.tx.send(DistEvent::WorkerDied { worker: self.w });
        }
    }
}

/// Sends `Heartbeat { lease }` every `every` until dropped, keeping the
/// lease alive while the sub-job runs.
struct HeartbeatPump {
    stop: Arc<AtomicBool>,
}

impl HeartbeatPump {
    fn start(tx: Sender<DistEvent>, lease: u64, every: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        std::thread::spawn(move || {
            let tick = every
                .min(Duration::from_millis(5))
                .max(Duration::from_millis(1));
            let mut next = Instant::now() + every;
            while !flag.load(Ordering::Acquire) {
                std::thread::sleep(tick);
                if flag.load(Ordering::Acquire) {
                    return;
                }
                if Instant::now() >= next {
                    if tx.send(DistEvent::Heartbeat { lease }).is_err() {
                        return;
                    }
                    next = Instant::now() + every;
                }
            }
        });
        HeartbeatPump { stop }
    }
}

impl Drop for HeartbeatPump {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// In-process [`DistTransport`]: one OS thread per worker, channels for
/// both directions, and message-plane fault injection at the
/// `dist:send:wW` / `dist:recv:wW` boundaries.
pub struct LocalTransport {
    senders: Vec<Sender<WorkerMsg>>,
    alive: Vec<Arc<AtomicBool>>,
    events: Mutex<Receiver<DistEvent>>,
    plan: Option<Arc<FaultPlan>>,
    handles: Vec<JoinHandle<()>>,
}

impl LocalTransport {
    /// `workers` fault-free in-process workers with 100 ms heartbeats.
    pub fn new(workers: usize) -> Self {
        Self::with_faults(workers, None, Duration::from_millis(100))
    }

    /// Full-control constructor: an optional message/pickup fault plan
    /// and the heartbeat period.
    pub fn with_faults(
        workers: usize,
        plan: Option<Arc<FaultPlan>>,
        heartbeat_every: Duration,
    ) -> Self {
        let (etx, erx) = mpsc::channel::<DistEvent>();
        let mut senders = Vec::with_capacity(workers);
        let mut alive = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (jtx, jrx) = mpsc::channel::<WorkerMsg>();
            let flag = Arc::new(AtomicBool::new(true));
            let etx = etx.clone();
            let flag2 = Arc::clone(&flag);
            let plan = plan.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(w, jrx, etx, flag2, plan, heartbeat_every)
            }));
            senders.push(jtx);
            alive.push(flag);
        }
        LocalTransport {
            senders,
            alive,
            events: Mutex::new(erx),
            plan,
            handles,
        }
    }

    /// Kills worker `w` at its next message pickup (a poison pill that
    /// panics the thread, exercising the [`DistEvent::WorkerDied`]
    /// path the same way an injected `dist:pickup` panic does).
    pub fn kill_worker(&self, w: usize) {
        let _ = self.senders[w].send(WorkerMsg::Die);
    }

    /// How many workers are currently alive.
    pub fn alive_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::Acquire))
            .count()
    }
}

impl Drop for LocalTransport {
    fn drop(&mut self) {
        self.senders.clear(); // close job channels: workers exit cleanly
        for h in self.handles.drain(..) {
            let _ = h.join(); // a killed worker joins with Err; ignore
        }
    }
}

impl DistTransport for LocalTransport {
    fn workers(&self) -> usize {
        self.alive.len()
    }

    fn alive(&self, w: usize) -> bool {
        self.alive.get(w).is_some_and(|a| a.load(Ordering::Acquire))
    }

    fn dispatch(&self, w: usize, job: SubJob) -> Result<(), String> {
        if !self.alive(w) {
            return Err(format!("worker {w} is dead"));
        }
        let mut copies = 1usize;
        if let Some(plan) = &self.plan {
            match plan.decide(&format!("dist:send:w{w}")) {
                Some(FaultKind::Drop) => return Ok(()), // lost in flight; lease expires
                Some(FaultKind::Dup) => copies = 2,
                Some(FaultKind::Stall(d)) | Some(FaultKind::Latency(d)) => std::thread::sleep(d),
                Some(FaultKind::Panic) => return Err(format!("injected send failure to w{w}")),
                Some(FaultKind::Cancel) | None => {}
            }
        }
        for _ in 0..copies {
            self.senders[w]
                .send(WorkerMsg::Job(Box::new(job.clone())))
                .map_err(|_| format!("worker {w} hung up"))?;
        }
        Ok(())
    }

    fn poll(&self, timeout: Duration) -> Option<DistEvent> {
        self.events.lock().unwrap().recv_timeout(timeout).ok()
    }
}

fn worker_loop(
    w: usize,
    rx: Receiver<WorkerMsg>,
    tx: Sender<DistEvent>,
    alive: Arc<AtomicBool>,
    plan: Option<Arc<FaultPlan>>,
    heartbeat_every: Duration,
) {
    let mut guard = DeathGuard {
        w,
        tx: tx.clone(),
        alive,
        armed: true,
    };
    loop {
        let job = match rx.recv() {
            Ok(WorkerMsg::Job(j)) => *j,
            Ok(WorkerMsg::Die) => panic!("worker {w} killed"),
            Err(_) => {
                guard.armed = false; // clean shutdown
                return;
            }
        };
        // Pickup faults run OUTSIDE the panic isolation below: a panic
        // here takes the whole worker down (→ WorkerDied), which is how
        // chaos tests model a crashed remote process.
        if let Some(plan) = &plan {
            match plan.decide(&format!("dist:pickup:{}", job.lease)) {
                Some(FaultKind::Panic) => {
                    panic!("fault injected: panic at dist:pickup:{}", job.lease)
                }
                Some(FaultKind::Latency(d)) | Some(FaultKind::Stall(d)) => std::thread::sleep(d),
                Some(FaultKind::Cancel) => job.extract.ctl.cancel(),
                Some(FaultKind::Drop) => continue, // job vanishes after pickup
                Some(FaultKind::Dup) | None => {}
            }
        }
        let lease = job.lease;
        let hb = HeartbeatPump::start(tx.clone(), lease, heartbeat_every);
        let out = catch_unwind(AssertUnwindSafe(|| execute_sub_job(&job)));
        drop(hb);
        let ev = match out {
            Ok((wr, report)) => DistEvent::Completed {
                lease,
                worker: w,
                result: Box::new(wr),
                report: Box::new(report),
            },
            Err(e) => DistEvent::Failed {
                lease,
                worker: w,
                message: panic_message(e.as_ref()),
            },
        };
        // Result-path message faults.
        let mut copies = 1usize;
        if let Some(plan) = &plan {
            match plan.decide(&format!("dist:recv:w{w}")) {
                Some(FaultKind::Drop) => continue, // result lost; lease expires
                Some(FaultKind::Dup) => copies = 2,
                Some(FaultKind::Stall(d)) | Some(FaultKind::Latency(d)) => std::thread::sleep(d),
                _ => {}
            }
        }
        for _ in 0..copies {
            if tx.send(ev.clone()).is_err() {
                guard.armed = false; // coordinator gone
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

/// One leasable unit of work: a target set over a shared base network,
/// tagged with what the worker should do with it.
struct Unit {
    targets: Arc<Vec<SignalId>>,
    base: Arc<Network>,
    kind: SubKind,
}

struct LeaseInfo {
    targets: Arc<Vec<SignalId>>,
    base: Arc<Network>,
    worker: usize,
    deadline: Instant,
    attempt: u32,
    kind: SubKind,
}

struct Coordinator<'a> {
    transport: &'a dyn DistTransport,
    cfg: &'a DistConfig,
    stats: DistStats,
    next_lease: u64,
    rr: usize,
    /// Set when a unit (partition or recovery) was abandoned past its
    /// retry budget — the result is still correct, just lower quality.
    unit_abandoned: bool,
    timed_out: bool,
    cancelled: bool,
}

impl<'a> Coordinator<'a> {
    fn new(transport: &'a dyn DistTransport, cfg: &'a DistConfig) -> Self {
        Coordinator {
            transport,
            cfg,
            stats: DistStats::default(),
            next_lease: 1,
            rr: 0,
            unit_abandoned: false,
            timed_out: false,
            cancelled: false,
        }
    }

    /// Next alive worker in round-robin order, skipping `avoid` when any
    /// other worker survives.
    fn pick_worker(&mut self, avoid: Option<usize>) -> Option<usize> {
        let n = self.transport.workers();
        let mut fallback = None;
        for i in 0..n {
            let w = (self.rr + i) % n;
            if !self.transport.alive(w) {
                continue;
            }
            if Some(w) == avoid {
                fallback = Some(w);
                continue;
            }
            self.rr = w + 1;
            return Some(w);
        }
        fallback
    }

    /// Runs a unit on the coordinator thread. Last resort: counts as an
    /// issued-and-immediately-resolved (or expired) lease so the
    /// balance identity survives transport loss.
    fn run_inline(&mut self, unit: Unit, done: &mut BTreeMap<u64, (WorkerResult, ExtractReport)>) {
        let lease = self.next_lease;
        self.next_lease += 1;
        self.stats.leases_issued += 1;
        let job = SubJob {
            lease,
            targets: unit.targets,
            base: unit.base,
            extract: self.cfg.extract.clone(),
            kind: unit.kind,
        };
        match catch_unwind(AssertUnwindSafe(|| execute_sub_job(&job))) {
            Ok((wr, report)) => {
                self.stats.leases_resolved += 1;
                done.insert(lease, (wr, report));
            }
            Err(_) => {
                self.stats.leases_expired += 1;
                self.stats.degraded_jobs += 1;
                self.unit_abandoned = true;
            }
        }
    }

    fn issue(
        &mut self,
        unit: Unit,
        attempt: u32,
        avoid: Option<usize>,
        active: &mut HashMap<u64, LeaseInfo>,
        done: &mut BTreeMap<u64, (WorkerResult, ExtractReport)>,
    ) {
        if attempt > self.cfg.max_attempts {
            // Retry budget exhausted: recovery degrades (the merged
            // network is already correct); partition units fall back to
            // the coordinator so quality survives total worker loss.
            if unit.kind.is_recovery() {
                self.stats.degraded_jobs += 1;
                self.unit_abandoned = true;
            } else {
                self.stats.failovers += 1;
                self.run_inline(unit, done);
            }
            return;
        }
        let Some(w) = self.pick_worker(avoid) else {
            // No workers left at all: the coordinator does the work
            // itself (degradation is reserved for units that burned
            // their whole retry budget on a live transport).
            self.run_inline(unit, done);
            return;
        };
        let lease = self.next_lease;
        self.next_lease += 1;
        self.stats.leases_issued += 1;
        let job = SubJob {
            lease,
            targets: Arc::clone(&unit.targets),
            base: Arc::clone(&unit.base),
            extract: self.cfg.extract.clone(),
            kind: unit.kind,
        };
        match self.transport.dispatch(w, job) {
            Ok(()) => {
                active.insert(
                    lease,
                    LeaseInfo {
                        targets: unit.targets,
                        base: unit.base,
                        worker: w,
                        deadline: Instant::now() + self.cfg.lease_timeout,
                        attempt,
                        kind: unit.kind,
                    },
                );
            }
            Err(_) => {
                // Certain non-delivery: expire on the spot and retry.
                self.stats.leases_expired += 1;
                self.stats.failovers += 1;
                self.backoff(lease);
                self.issue(unit, attempt + 1, Some(w), active, done);
            }
        }
    }

    /// Jittered backoff before a failover re-dispatch (bounded by 2x
    /// the configured base, deterministic per lease for a fixed seed).
    fn backoff(&self, lease: u64) {
        let base = self.cfg.retry_backoff;
        if base.is_zero() {
            return;
        }
        let jitter = splitmix64(self.cfg.seed ^ lease) % (base.as_millis().max(1) as u64);
        std::thread::sleep(base + Duration::from_millis(jitter));
    }

    fn failover(
        &mut self,
        l: LeaseInfo,
        active: &mut HashMap<u64, LeaseInfo>,
        done: &mut BTreeMap<u64, (WorkerResult, ExtractReport)>,
    ) {
        self.stats.failovers += 1;
        let attempt = l.attempt + 1;
        if l.kind == SubKind::Extract && attempt >= self.cfg.split_after && l.targets.len() > 1 {
            // Work stealing: the unit keeps expiring, so split it in
            // two and lease the halves separately (attempt count
            // carries over; a 1-target unit can no longer split).
            let mid = l.targets.len() / 2;
            let lo = Unit {
                targets: Arc::new(l.targets[..mid].to_vec()),
                base: Arc::clone(&l.base),
                kind: SubKind::Extract,
            };
            let hi = Unit {
                targets: Arc::new(l.targets[mid..].to_vec()),
                base: l.base,
                kind: SubKind::Extract,
            };
            self.stats.leases_stolen += 2;
            self.issue(lo, attempt, Some(l.worker), active, done);
            self.issue(hi, attempt, Some(l.worker), active, done);
            return;
        }
        let lease_hint = self.next_lease;
        self.backoff(lease_hint);
        let unit = Unit {
            targets: l.targets,
            base: l.base,
            kind: l.kind,
        };
        self.issue(unit, attempt, Some(l.worker), active, done);
    }

    /// True once the caller's RunCtl asks the whole run to stop.
    fn check_stop(&mut self) -> bool {
        match self.cfg.extract.ctl.stop_reason() {
            None => false,
            Some(crate::ctl::StopReason::Cancelled) => {
                self.cancelled = true;
                true
            }
            Some(crate::ctl::StopReason::DeadlineExpired) => {
                self.timed_out = true;
                true
            }
        }
    }

    /// Issues a lease per unit and supervises until every unit resolved
    /// or was abandoned. Results come back ordered by lease id, so the
    /// downstream merge is deterministic regardless of completion order.
    fn run_phase(&mut self, units: Vec<Unit>) -> Vec<(WorkerResult, ExtractReport)> {
        self.run_phase_opts(units, false)
    }

    /// [`Self::run_phase`] with optional abort-on-abandon: when one unit
    /// burns its retry budget (`unit_abandoned`), the remaining units of
    /// the phase are not issued and outstanding leases expire. Recovery
    /// phases use this — a partially-applied recovery stage would not be
    /// the clean Algorithm-I-quality fallback the degraded contract
    /// promises, so the first abandonment aborts the whole stage.
    fn run_phase_opts(
        &mut self,
        units: Vec<Unit>,
        abort_on_abandon: bool,
    ) -> Vec<(WorkerResult, ExtractReport)> {
        let mut active: HashMap<u64, LeaseInfo> = HashMap::new();
        let mut done: BTreeMap<u64, (WorkerResult, ExtractReport)> = BTreeMap::new();
        for unit in units {
            if unit.targets.is_empty() {
                continue;
            }
            if abort_on_abandon && self.unit_abandoned {
                break;
            }
            self.issue(unit, 0, None, &mut active, &mut done);
        }
        while !active.is_empty() {
            if abort_on_abandon && self.unit_abandoned {
                self.stats.leases_expired += active.len() as u64;
                active.clear();
                break;
            }
            if self.check_stop() {
                // Wind down: outstanding leases expire so the balance
                // identity holds at quiescence; their late results (if
                // any) are never admitted.
                self.stats.leases_expired += active.len() as u64;
                active.clear();
                break;
            }
            match self.transport.poll(self.cfg.poll_interval) {
                Some(DistEvent::Completed {
                    lease,
                    result,
                    report,
                    ..
                }) => {
                    if active.remove(&lease).is_some() {
                        self.stats.leases_resolved += 1;
                        done.insert(lease, (*result, *report));
                    } else {
                        self.stats.stale_results += 1;
                    }
                }
                Some(DistEvent::Failed { lease, .. }) => {
                    if let Some(l) = active.remove(&lease) {
                        self.stats.leases_expired += 1;
                        self.failover(l, &mut active, &mut done);
                    } else {
                        self.stats.stale_results += 1;
                    }
                }
                Some(DistEvent::Heartbeat { lease }) => {
                    if let Some(l) = active.get_mut(&lease) {
                        l.deadline = Instant::now() + self.cfg.lease_timeout;
                    }
                }
                Some(DistEvent::WorkerDied { worker }) => {
                    let orphaned: Vec<u64> = active
                        .iter()
                        .filter(|(_, l)| l.worker == worker)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in orphaned {
                        let l = active.remove(&id).unwrap();
                        self.stats.leases_expired += 1;
                        self.failover(l, &mut active, &mut done);
                    }
                }
                None => {}
            }
            let now = Instant::now();
            let overdue: Vec<u64> = active
                .iter()
                .filter(|(_, l)| now >= l.deadline)
                .map(|(&id, _)| id)
                .collect();
            for id in overdue {
                let l = active.remove(&id).unwrap();
                self.stats.leases_expired += 1;
                self.failover(l, &mut active, &mut done);
            }
        }
        done.into_values().collect()
    }
}

/// Runs fault-tolerant distributed Algorithm I (with boundary recovery)
/// on the network, in place. Returns the report plus the coordinator's
/// lease statistics.
pub fn distributed_extract(
    nw: &mut Network,
    transport: &dyn DistTransport,
    cfg: &DistConfig,
) -> (ExtractReport, DistStats) {
    let mut lane = cfg.extract.trace.lane("dist");
    let start = Instant::now();
    let lc_before = nw.literal_count();
    let parts_n = if cfg.parts == 0 {
        transport.workers().max(1)
    } else {
        cfg.parts
    };

    let span = lane.start("partition");
    let partition = partition_network(nw, parts_n, &cfg.partition);
    let parts: Vec<Vec<SignalId>> = (0..parts_n).map(|q| partition.part_nodes(q)).collect();
    lane.end_with(span, || vec![("parts", parts_n as i64)]);
    let partition_elapsed = start.elapsed();

    let mut co = Coordinator::new(transport, cfg);
    let base = Arc::new(nw.clone());
    let span = lane.start("extract");
    let units: Vec<_> = parts
        .into_iter()
        .filter(|t| !t.is_empty())
        .map(|t| Unit {
            targets: Arc::new(t),
            base: Arc::clone(&base),
            kind: SubKind::Extract,
        })
        .collect();
    let results = co.run_phase(units);
    lane.end(span);
    let extract_elapsed = start.elapsed().saturating_sub(partition_elapsed);

    let mut extractions = 0usize;
    let mut total_value = 0i64;
    let mut budget_exhausted = false;
    let mut passes = 0usize;
    let mut batch_candidates = 0usize;
    let mut batch_accepted = 0usize;
    let mut batch_rejected = 0usize;
    let mut worker_results = Vec::with_capacity(results.len());
    for (wr, rep) in results {
        extractions += rep.extractions;
        total_value += rep.total_value;
        budget_exhausted |= rep.budget_exhausted;
        passes += rep.passes;
        batch_candidates += rep.batch_candidates;
        batch_accepted += rep.batch_accepted;
        batch_rejected += rep.batch_rejected;
        co.timed_out |= rep.timed_out;
        co.cancelled |= rep.cancelled;
        worker_results.push(wr);
    }
    let span = lane.start("merge");
    let created = merge_worker_results(nw, worker_results).expect("dist merge of leased parts");
    lane.end(span);
    let merge_elapsed = start
        .elapsed()
        .saturating_sub(partition_elapsed + extract_elapsed);

    // Boundary recovery, in two sharded leased phases over only the
    // frontier the partitioner cut (plus the nodes the partition phase
    // created) — which is where every dropped cross-partition rectangle
    // lives. An empty frontier means nothing was cut (single effective
    // partition): recovery would re-extract zero rectangles and collapse
    // zero duplicates, so it is skipped without issuing a single lease.
    let mut recovery_rects = 0usize;
    let mut degraded = false;
    let mut frontier_elapsed = Duration::ZERO;
    let mut resub_elapsed = Duration::ZERO;
    let mut resub_pairs_considered = 0usize;
    let mut resub_pairs_divided = 0usize;
    let mut resub_worklist_rounds = 0usize;
    let frontier = if cfg.recovery {
        frontier_nodes(&partition)
    } else {
        Vec::new()
    };
    if cfg.recovery && !frontier.is_empty() && !co.check_stop() {
        // Default shard count: one per worker, but never more than the
        // host has cores — each shard pays a fixed O(network) cost
        // (snapshot clone, divisor-index build), and on an oversubscribed
        // host extra shards are pure overhead with no concurrency to buy.
        let shards = if cfg.recovery_shards == 0 {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            transport.workers().min(cores).max(1)
        } else {
            cfg.recovery_shards
        };
        let before = co.unit_abandoned;
        co.unit_abandoned = false;

        // Phase 1 — frontier re-extraction, sharded by disjoint targets.
        let t_frontier = Instant::now();
        let span = lane.start("recovery:frontier");
        let mut targets: BTreeSet<SignalId> = frontier.iter().copied().collect();
        targets.extend(created.iter().copied());
        let targets: Vec<SignalId> = targets.into_iter().collect();
        let rbase = Arc::new(nw.clone());
        let units: Vec<Unit> = shard_targets(&targets, shards)
            .into_iter()
            .map(|t| Unit {
                targets: Arc::new(t),
                base: Arc::clone(&rbase),
                kind: SubKind::Frontier,
            })
            .collect();
        let fresults = co.run_phase_opts(units, true);
        if co.unit_abandoned || fresults.is_empty() {
            degraded = true;
        }
        let mut created2: Vec<SignalId> = Vec::new();
        if !degraded {
            for (wr, rep) in fresults {
                extractions += rep.extractions;
                total_value += rep.total_value;
                budget_exhausted |= rep.budget_exhausted;
                passes += rep.passes;
                batch_candidates += rep.batch_candidates;
                batch_accepted += rep.batch_accepted;
                batch_rejected += rep.batch_rejected;
                recovery_rects += rep.extractions;
                let new_ids =
                    merge_worker_results(nw, vec![wr]).expect("dist merge of frontier shard");
                created2.extend(new_ids);
            }
        }
        lane.end_with(span, || {
            vec![("rects", recovery_rects as i64), ("shards", shards as i64)]
        });
        frontier_elapsed = t_frontier.elapsed();

        // Phase 2 — duplicate collapse: the duplicate candidates
        // (frontier ∪ every node recovery or the partition phase
        // created) are sharded as divisor sets; each lease resubstitutes
        // its divisors into the same merged snapshot. The coordinator
        // applies shard rewrites in lease order (first claim per node
        // wins, cycle-guarded), then runs a seeded incremental fixpoint
        // to catch chains that crossed shard boundaries.
        if !degraded && !co.check_stop() {
            let t_resub = Instant::now();
            let span = lane.start("recovery:resub");
            let mut divisors: BTreeSet<SignalId> = frontier.iter().copied().collect();
            divisors.extend(created.iter().copied());
            divisors.extend(created2.iter().copied());
            let divisors: Vec<SignalId> = divisors
                .into_iter()
                .filter(|&d| !nw.func(d).is_zero())
                .collect();
            if !divisors.is_empty() {
                let rbase = Arc::new(nw.clone());
                let units: Vec<Unit> = shard_targets(&divisors, shards)
                    .into_iter()
                    .map(|t| Unit {
                        targets: Arc::new(t),
                        base: Arc::clone(&rbase),
                        kind: SubKind::Resub,
                    })
                    .collect();
                let rresults = co.run_phase_opts(units, true);
                if co.unit_abandoned || rresults.is_empty() {
                    degraded = true;
                } else {
                    let mut claimed: FxHashSet<SignalId> = FxHashSet::default();
                    let mut seeds: Vec<SignalId> = Vec::new();
                    for (wr, rep) in rresults {
                        resub_pairs_considered += rep.resub_pairs_considered;
                        resub_pairs_divided += rep.resub_pairs_divided;
                        resub_worklist_rounds += rep.resub_worklist_rounds;
                        let (changed, conflicted) = apply_resub_shard(
                            nw,
                            wr,
                            &mut claimed,
                            &mut co.stats.recovery_conflicts,
                        );
                        seeds.extend(changed);
                        seeds.extend(conflicted);
                    }
                    if !seeds.is_empty() {
                        let scope = ResubScope {
                            divisors: None,
                            seeds: Some(&seeds),
                        };
                        if let Ok(rep) = resubstitute_scoped(nw, &scope) {
                            resub_pairs_considered += rep.pairs_considered;
                            resub_pairs_divided += rep.pairs_divided;
                            resub_worklist_rounds += rep.worklist_rounds;
                        }
                    }
                }
            }
            lane.end_with(span, || {
                vec![
                    ("pairs", resub_pairs_considered as i64),
                    ("divided", resub_pairs_divided as i64),
                ]
            });
            resub_elapsed = t_resub.elapsed();
        }

        // The recovery resub turns duplicated factor nodes into dead
        // logic and pass-through wires; sweep them out. Skipped on
        // degraded runs so the result stays exactly the
        // Algorithm-I-quality network the parts produced.
        if !degraded {
            let span = lane.start("recovery:sweep");
            let _ = sweep(nw);
            lane.end(span);
        }
        co.unit_abandoned |= before;
    }
    co.stats.recovery_rects = recovery_rects as u64;
    degraded |= co.unit_abandoned;
    co.cancelled |= cfg.extract.ctl.is_cancelled();

    let elapsed = start.elapsed();
    // The sweep phase absorbs the remainder (trailing bookkeeping
    // included) so the per-phase breakdown still sums to `elapsed`.
    let sweep_elapsed = elapsed.saturating_sub(
        partition_elapsed + extract_elapsed + merge_elapsed + frontier_elapsed + resub_elapsed,
    );
    let report = ExtractReport {
        lc_before,
        lc_after: nw.literal_count(),
        extractions,
        total_value,
        elapsed,
        budget_exhausted,
        shipped_rectangles: 0,
        timed_out: co.timed_out,
        cancelled: co.cancelled,
        degraded,
        recovery_rects,
        passes,
        batch_candidates,
        batch_accepted,
        batch_rejected,
        resub_pairs_considered,
        resub_pairs_divided,
        resub_worklist_rounds,
        setup: partition_elapsed,
        phases: vec![
            PhaseTiming::new("partition", partition_elapsed),
            PhaseTiming::new("extract", extract_elapsed),
            PhaseTiming::new("merge", merge_elapsed),
            PhaseTiming::new("frontier", frontier_elapsed),
            PhaseTiming::new("resub", resub_elapsed),
            PhaseTiming::new("sweep", sweep_elapsed),
        ],
    };
    (report, co.stats)
}

/// Splits an id-sorted target list into at most `shards` contiguous,
/// disjoint, non-empty chunks — deterministic for a fixed list and
/// shard count.
fn shard_targets(targets: &[SignalId], shards: usize) -> Vec<Vec<SignalId>> {
    let shards = shards.max(1).min(targets.len().max(1));
    let chunk = targets.len().div_ceil(shards);
    targets.chunks(chunk.max(1)).map(|c| c.to_vec()).collect()
}

/// Applies one resub shard's rewrites to the merged network in lease
/// order: the first shard to claim a node wins (later claims count as
/// conflicts), and a rewrite that would close a cycle — possible only
/// when another shard's substitution created the path — is rolled back.
/// Returns `(changed, conflicted)`: the nodes actually rewritten and
/// the nodes whose rewrite was dropped. Both seed the coordinator's
/// cross-shard fixpoint — a dropped rewrite still marks a node whose
/// division opportunity exists in the merged network, and the seeded
/// resub re-derives it against the full divisor index instead of
/// silently losing the literals.
fn apply_resub_shard(
    nw: &mut Network,
    wr: WorkerResult,
    claimed: &mut FxHashSet<SignalId>,
    conflicts: &mut u64,
) -> (Vec<SignalId>, Vec<SignalId>) {
    let mut changed = Vec::new();
    let mut conflicted = Vec::new();
    // Batch-apply the shard's unclaimed rewrites, then run ONE cycle
    // check for the whole shard: the per-rewrite `topo_order` it
    // replaces cost O(network) per rewritten node, which dominated the
    // recovery resub phase. Cycles are the cross-shard exception, not
    // the rule, so the common case pays a single validation.
    let mut applied: Vec<SignalId> = Vec::new();
    let mut snapshots = Vec::new();
    for (node, func) in wr.rewritten {
        if !claimed.insert(node) {
            *conflicts += 1;
            conflicted.push(node);
            continue;
        }
        let snapshot = nw.func(node).clone();
        if nw.set_func(node, func).is_err() {
            *conflicts += 1;
            conflicted.push(node);
            continue;
        }
        applied.push(node);
        snapshots.push((node, snapshot));
    }
    if nw.topo_order().is_ok() {
        changed.extend(applied);
        return (changed, conflicted);
    }
    // Slow path: some rewrite closed a cycle. Roll the shard back and
    // re-apply one rewrite at a time with per-step checks so only the
    // culprits are dropped.
    let rewrites: Vec<_> = applied.iter().map(|&n| (n, nw.func(n).clone())).collect();
    for (node, snapshot) in snapshots.into_iter().rev() {
        let _ = nw.set_func(node, snapshot);
    }
    for (node, func) in rewrites {
        let snapshot = nw.func(node).clone();
        if nw.set_func(node, func).is_err() {
            *conflicts += 1;
            conflicted.push(node);
            continue;
        }
        if nw.topo_order().is_err() {
            let _ = nw.set_func(node, snapshot);
            *conflicts += 1;
            conflicted.push(node);
            continue;
        }
        changed.push(node);
    }
    (changed, conflicted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRule;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};

    /// Suppresses the default panic hook's stderr spew for injected
    /// panics and kill pills (they are the point here); real panics
    /// still print.
    fn quiet_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let expected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("fault injected") || s.contains("killed"));
                if !expected {
                    prev(info);
                }
            }));
        });
    }

    fn fast_cfg() -> DistConfig {
        DistConfig {
            lease_timeout: Duration::from_millis(1_500),
            poll_interval: Duration::from_millis(2),
            retry_backoff: Duration::from_millis(1),
            ..DistConfig::default()
        }
    }

    fn bigger_network() -> Network {
        let profile = pf_workloads::CircuitProfile::small("dist-test", 11);
        pf_workloads::generate(&profile)
    }

    #[test]
    fn two_workers_extract_and_recover() {
        let mut nw = bigger_network();
        let original = nw.clone();
        let t = LocalTransport::new(2);
        let (report, stats) = distributed_extract(&mut nw, &t, &fast_cfg());
        assert!(report.lc_after < report.lc_before, "extraction happened");
        assert!(!report.degraded);
        assert!(report.completed());
        assert!(stats.balanced(), "{stats:?}");
        // Two partition leases, then recovery sharded across the two
        // workers: two frontier shards + up to two resub shards (the
        // frontier is non-empty on this circuit).
        assert!(
            (4..=6).contains(&(stats.leases_resolved as usize)),
            "{stats:?}"
        );
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn recovery_closes_partition_gap() {
        // Quality ordering: dist-with-recovery ≤ plain Algorithm I on
        // the same partition (recovery only ever removes literals; its
        // resub pass can even beat the extract-only seq oracle).
        let base = bigger_network();
        let mut s = base.clone();
        extract_kernels(&mut s, &[], &ExtractConfig::default());

        let mut plain = base.clone();
        let t = LocalTransport::new(2);
        let cfg = DistConfig {
            recovery: false,
            ..fast_cfg()
        };
        let (rep_plain, _) = distributed_extract(&mut plain, &t, &cfg);

        let mut rec = base.clone();
        let t2 = LocalTransport::new(2);
        let (rep_rec, stats) = distributed_extract(&mut rec, &t2, &fast_cfg());

        assert!(rep_rec.lc_after <= rep_plain.lc_after);
        // When partitioning cost anything, recovery (frontier
        // re-extraction + resubstitution + sweep) must win some of it
        // back — this is the ≥0% floor; the bench gates the real one.
        if rep_plain.lc_after > s.literal_count() {
            assert!(
                rep_rec.lc_after < rep_plain.lc_after,
                "recovery closed none of the {} literal gap",
                rep_plain.lc_after - s.literal_count()
            );
        }
        assert_eq!(rep_plain.recovery_rects, 0);
        assert_eq!(rep_rec.recovery_rects as u64, stats.recovery_rects);
        assert!(stats.balanced());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut nw = bigger_network();
            let t = LocalTransport::new(2);
            let (report, _) = distributed_extract(&mut nw, &t, &fast_cfg());
            (report.lc_after, report.extractions, nw.literal_count())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn worker_death_fails_over() {
        quiet_injected_panics();
        let mut nw = bigger_network();
        let original = nw.clone();
        // First pickup panics the worker thread → WorkerDied → failover.
        let plan =
            Arc::new(FaultPlan::new(7).with_rule(FaultRule::panic_at("dist:pickup").max_hits(1)));
        let t = LocalTransport::with_faults(2, Some(plan), Duration::from_millis(50));
        let (report, stats) = distributed_extract(&mut nw, &t, &fast_cfg());
        assert!(report.completed());
        assert!(!report.degraded);
        assert!(stats.failovers >= 1, "{stats:?}");
        assert!(stats.leases_expired >= 1);
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(t.alive_count(), 1);
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn failed_subjob_fails_over_without_killing_worker() {
        quiet_injected_panics();
        let mut nw = bigger_network();
        let ctl = crate::RunCtl::new().with_faults(Arc::new(
            FaultPlan::new(3).with_rule(FaultRule::panic_at("dist:work").max_hits(1)),
        ));
        let cfg = DistConfig {
            extract: ExtractConfig {
                ctl,
                ..ExtractConfig::default()
            },
            ..fast_cfg()
        };
        let t = LocalTransport::new(2);
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.completed());
        assert!(!report.degraded);
        assert!(stats.failovers >= 1);
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(
            t.alive_count(),
            2,
            "an isolated sub-job panic spares the worker"
        );
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn recovery_death_degrades_gracefully() {
        quiet_injected_panics();
        let base = bigger_network();
        // Oracle: the same run with recovery disabled.
        let mut plain = base.clone();
        let t0 = LocalTransport::new(2);
        let cfg_plain = DistConfig {
            recovery: false,
            ..fast_cfg()
        };
        let (rep_plain, _) = distributed_extract(&mut plain, &t0, &cfg_plain);

        // Every recovery attempt panics (inside isolation) until the
        // retry budget is gone.
        let mut nw = base.clone();
        let ctl = crate::RunCtl::new().with_faults(Arc::new(
            FaultPlan::new(3).with_rule(FaultRule::panic_at("dist:recover")),
        ));
        let cfg = DistConfig {
            extract: ExtractConfig {
                ctl,
                ..ExtractConfig::default()
            },
            max_attempts: 2,
            ..fast_cfg()
        };
        let t = LocalTransport::new(2);
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.degraded, "recovery loss must be recorded");
        assert_eq!(report.recovery_rects, 0);
        assert_eq!(stats.degraded_jobs, 1);
        assert!(stats.balanced(), "{stats:?}");
        // Degraded output is exactly the Algorithm-I-quality result.
        assert_eq!(report.lc_after, rep_plain.lc_after);
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn dropped_result_expires_and_retries() {
        let mut nw = bigger_network();
        let original = nw.clone();
        let plan =
            Arc::new(FaultPlan::new(9).with_rule(FaultRule::drop_at("dist:recv:w0").max_hits(1)));
        let t = LocalTransport::with_faults(2, Some(plan), Duration::from_millis(50));
        let cfg = DistConfig {
            lease_timeout: Duration::from_millis(250),
            ..fast_cfg()
        };
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.completed());
        assert!(stats.leases_expired >= 1, "{stats:?}");
        assert!(stats.failovers >= 1);
        assert!(stats.balanced(), "{stats:?}");
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn duplicated_result_is_admitted_once() {
        let mut nw = bigger_network();
        let original = nw.clone();
        let plan = Arc::new(FaultPlan::new(11).with_rule(FaultRule::dup_at("dist:recv")));
        let t = LocalTransport::with_faults(2, Some(plan), Duration::from_millis(50));
        let (report, stats) = distributed_extract(&mut nw, &t, &fast_cfg());
        assert!(report.completed());
        assert!(
            stats.stale_results >= 1,
            "duplicates are counted: {stats:?}"
        );
        assert!(stats.balanced(), "{stats:?}");
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn stalled_result_fails_over_and_late_answer_is_stale() {
        let mut nw = bigger_network();
        let plan = Arc::new(FaultPlan::new(13).with_rule(
            FaultRule::stall_at("dist:recv:w0", Duration::from_millis(600)).max_hits(1),
        ));
        // Heartbeats slower than the lease: the stalled delivery cannot
        // keep its lease alive, so the coordinator must fail over.
        let t = LocalTransport::with_faults(2, Some(plan), Duration::from_millis(400));
        let cfg = DistConfig {
            lease_timeout: Duration::from_millis(200),
            ..fast_cfg()
        };
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.completed());
        assert!(stats.failovers >= 1, "{stats:?}");
        assert!(stats.balanced(), "{stats:?}");
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn no_workers_runs_inline() {
        let mut nw = bigger_network();
        let original = nw.clone();
        let t = LocalTransport::new(0);
        let cfg = DistConfig {
            parts: 2,
            ..fast_cfg()
        };
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.lc_after < report.lc_before);
        assert!(!report.degraded, "inline fallback is full quality");
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(stats.failovers, 0);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn cancelled_run_reports_cancelled() {
        let (mut nw, _) = example_1_1();
        let cfg = fast_cfg();
        cfg.extract.ctl.cancel();
        let t = LocalTransport::new(2);
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.cancelled);
        assert!(
            stats.balanced(),
            "wind-down expires outstanding leases: {stats:?}"
        );
    }

    #[test]
    fn kill_worker_mid_run_still_one_answer() {
        quiet_injected_panics();
        let mut nw = bigger_network();
        let original = nw.clone();
        // Stall worker 0's pickup long enough for the kill pill (sent
        // right after dispatch) to land while the run is in flight.
        let plan =
            Arc::new(FaultPlan::new(17).with_rule(
                FaultRule::stall_at("dist:pickup", Duration::from_millis(50)).max_hits(1),
            ));
        let t = LocalTransport::with_faults(2, Some(plan), Duration::from_millis(50));
        t.kill_worker(0);
        let cfg = DistConfig {
            lease_timeout: Duration::from_millis(400),
            ..fast_cfg()
        };
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.completed());
        assert!(stats.balanced(), "{stats:?}");
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn single_partition_skips_recovery_entirely() {
        // Satellite of ROADMAP item 4: with one part the frontier is
        // empty, so recovery has nothing to recover — no recovery
        // leases, no resub, no sweep, zero recovery phase time.
        let mut nw = bigger_network();
        let t = LocalTransport::new(1);
        let cfg = DistConfig {
            parts: 1,
            ..fast_cfg()
        };
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.completed());
        assert!(!report.degraded);
        assert_eq!(stats.leases_issued, 1, "only the partition lease");
        assert_eq!(report.recovery_rects, 0);
        assert_eq!(report.phase("frontier"), Some(Duration::ZERO));
        assert_eq!(report.phase("resub"), Some(Duration::ZERO));
        assert_eq!(report.resub_pairs_considered, 0);
        assert!(stats.balanced(), "{stats:?}");
    }

    #[test]
    fn sharded_recovery_matches_serial_quality() {
        // The sharded recovery (one shard per worker) must land on the
        // same literal count as the legacy serial recovery lease.
        let base = bigger_network();
        let run = |shards: usize| {
            let mut nw = base.clone();
            let t = LocalTransport::new(2);
            let cfg = DistConfig {
                recovery_shards: shards,
                ..fast_cfg()
            };
            let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
            assert!(report.completed() && !report.degraded);
            assert!(stats.balanced(), "{stats:?}");
            assert!(nw.validate().is_ok());
            (report.lc_after, nw)
        };
        let (lc_serial, _) = run(1);
        let (lc_sharded, nw) = run(2);
        assert_eq!(lc_sharded, lc_serial, "sharding must not cost quality");
        let original = base.clone();
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn sharded_recovery_reports_resub_counters() {
        let mut nw = bigger_network();
        let t = LocalTransport::new(2);
        let (report, _) = distributed_extract(&mut nw, &t, &fast_cfg());
        assert!(!report.degraded);
        // The recovery resub ran: it examined pairs, and every division
        // it performed is included in the considered count.
        assert!(report.resub_worklist_rounds >= 1);
        assert!(report.resub_pairs_considered >= report.resub_pairs_divided);
    }

    #[test]
    fn resub_shard_death_fails_over_and_converges() {
        quiet_injected_panics();
        let base = bigger_network();
        // Oracle: the same sharded run without faults.
        let mut clean = base.clone();
        let t0 = LocalTransport::new(2);
        let cfg0 = DistConfig {
            recovery_shards: 2,
            ..fast_cfg()
        };
        let (rep_clean, _) = distributed_extract(&mut clean, &t0, &cfg0);

        // Kill the first resub shard attempt mid-recovery; the lease
        // must fail over to a surviving worker and converge un-degraded.
        let mut nw = base.clone();
        let ctl = crate::RunCtl::new().with_faults(Arc::new(
            FaultPlan::new(5).with_rule(FaultRule::panic_at("dist:recover:resub").max_hits(1)),
        ));
        let cfg = DistConfig {
            extract: ExtractConfig {
                ctl,
                ..ExtractConfig::default()
            },
            recovery_shards: 2,
            ..fast_cfg()
        };
        let t = LocalTransport::new(2);
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.completed());
        assert!(!report.degraded, "one shard death is survivable");
        assert!(stats.failovers >= 1, "{stats:?}");
        assert!(stats.balanced(), "{stats:?}");
        assert_eq!(report.lc_after, rep_clean.lc_after);
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&base, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn every_resub_shard_dying_degrades_once() {
        quiet_injected_panics();
        let base = bigger_network();
        let mut plain = base.clone();
        let t0 = LocalTransport::new(2);
        let cfg_plain = DistConfig {
            recovery: false,
            ..fast_cfg()
        };
        let (rep_plain, _) = distributed_extract(&mut plain, &t0, &cfg_plain);

        // Frontier recovery succeeds; every resub shard attempt panics
        // until the retry budget is gone → the stage aborts, degraded
        // is recorded exactly once, and the network stays at (or under —
        // the frontier shards may still have extracted) Algorithm-I
        // quality while remaining valid and equivalent.
        let mut nw = base.clone();
        let ctl = crate::RunCtl::new().with_faults(Arc::new(
            FaultPlan::new(5).with_rule(FaultRule::panic_at("dist:recover:resub")),
        ));
        let cfg = DistConfig {
            extract: ExtractConfig {
                ctl,
                ..ExtractConfig::default()
            },
            max_attempts: 2,
            recovery_shards: 2,
            ..fast_cfg()
        };
        let t = LocalTransport::new(2);
        let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
        assert!(report.degraded, "total resub loss must be recorded");
        assert_eq!(stats.degraded_jobs, 1, "abort counts one degradation");
        assert!(stats.balanced(), "{stats:?}");
        assert!(report.lc_after <= rep_plain.lc_after);
        assert!(nw.validate().is_ok());
        assert!(equivalent_random(&base, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn frontier_is_empty_for_single_part() {
        let (nw, _) = example_1_1();
        let p = partition_network(&nw, 1, &PartitionConfig::default());
        assert!(frontier_nodes(&p).is_empty());
    }

    #[test]
    fn lease_blocks_do_not_collide() {
        let seen: std::collections::HashSet<u32> = (1..200).map(block_base_for).collect();
        assert_eq!(
            seen.len(),
            199,
            "distinct blocks for realistic lease counts"
        );
        assert!(seen.iter().all(|&b| b >= 10_000_000));
    }
}
