//! Common-cube extraction (`gcx`) — the *other* rectangle-cover problem
//! of §2, plus its partitioned parallel variant.
//!
//! The sequential loop mirrors kernel extraction: build the cube–literal
//! matrix, extract the maximum-valued common cube as a new node,
//! rewrite the covered cubes, repeat. The parallel variant applies the
//! paper's Algorithm I decomposition to this cover problem — the
//! conclusion's claim that "our methods can be directly applied …
//! provided the algorithms are formulated in terms of a rectangular
//! cover problem", demonstrated.

use crate::merge::{merge_worker_results, NewNode, WorkerResult};
use crate::report::{ExtractReport, PhaseTiming};
use pf_kcmatrix::CubeLitMatrix;
use pf_network::{Network, SignalId};
use pf_partition::{partition_network, PartitionConfig};
use pf_sop::fx::FxHashMap;
use pf_sop::{Cube, Sop};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Options for [`extract_common_cubes`].
#[derive(Clone, Debug)]
pub struct CubeExtractConfig {
    /// Budget for the pairwise candidate enumeration per pass.
    pub max_pairs: usize,
    /// Hard cap on extractions.
    pub max_extractions: usize,
    /// Name prefix for the extracted cube nodes.
    pub name_prefix: String,
}

impl Default for CubeExtractConfig {
    fn default() -> Self {
        CubeExtractConfig {
            max_pairs: 1 << 20,
            max_extractions: usize::MAX,
            name_prefix: "cx_".to_string(),
        }
    }
}

/// Runs common-cube extraction to completion on `targets` (all internal
/// nodes when empty).
pub fn extract_common_cubes(
    nw: &mut Network,
    targets: &[SignalId],
    cfg: &CubeExtractConfig,
) -> ExtractReport {
    let start = Instant::now();
    let lc_before = nw.literal_count();
    let mut targets: Vec<SignalId> = if targets.is_empty() {
        nw.node_ids().collect()
    } else {
        targets.to_vec()
    };
    let mut report = ExtractReport {
        lc_before,
        ..Default::default()
    };
    let mut counter = 0usize;
    let mut matrix_time = Duration::ZERO;

    while report.extractions < cfg.max_extractions {
        // Rebuild per pass: cube extraction converges in few passes and
        // the matrix is linear in the literal count.
        let build_start = Instant::now();
        let mut m = CubeLitMatrix::new();
        for &t in &targets {
            m.add_node(t, nw.func(t));
        }
        matrix_time += build_start.elapsed();
        let Some(best) = m.best_common_cube(cfg.max_pairs) else {
            break;
        };

        // Extract: X = Π cube; covered cubes become (c \ cube)·X.
        let name = loop {
            let candidate = format!("{}{}", cfg.name_prefix, counter);
            counter += 1;
            if nw.find(&candidate).is_none() {
                break candidate;
            }
        };
        let x = nw
            .add_node(name, Sop::from_cube(best.cube.clone()))
            .expect("fresh name");
        let x_cube = Cube::single(nw.var(x).lit());

        let mut by_node: FxHashMap<SignalId, Vec<Cube>> = FxHashMap::default();
        for &r in &best.rows {
            let row = &m.rows()[r];
            by_node.entry(row.node).or_default().push(row.cube.clone());
        }
        for (node, covered) in by_node {
            let f = nw.func(node);
            let rewritten = f.iter().map(|c| {
                if covered.contains(c) {
                    c.quotient(&best.cube)
                        .expect("support row is divisible")
                        .product(&x_cube)
                        .expect("fresh variable")
                } else {
                    c.clone()
                }
            });
            let f_new = Sop::from_cubes(rewritten);
            nw.set_func(node, f_new).expect("node exists");
        }
        targets.push(x);
        report.extractions += 1;
        report.total_value += best.value;
    }

    report.lc_after = nw.literal_count();
    report.elapsed = start.elapsed();
    report.setup = matrix_time;
    report.phases = vec![
        PhaseTiming::new("matrix", matrix_time),
        PhaseTiming::new("cover", report.elapsed.saturating_sub(matrix_time)),
    ];
    report
}

/// Algorithm I applied to cube extraction: min-cut partition, extract
/// common cubes independently per part, merge.
pub fn independent_extract_cubes(
    nw: &mut Network,
    procs: usize,
    cfg: &CubeExtractConfig,
    pcfg: &PartitionConfig,
) -> ExtractReport {
    let start = Instant::now();
    let p = procs.max(1);
    let lc_before = nw.literal_count();
    let n0 = nw.num_signals() as u32;
    let partition = partition_network(nw, p, pcfg);
    let parts: Vec<Vec<SignalId>> = (0..p).map(|q| partition.part_nodes(q)).collect();
    let partition_elapsed = start.elapsed();

    let results: Mutex<Vec<(WorkerResult, ExtractReport)>> = Mutex::new(Vec::new());
    let nw_ref: &Network = nw;
    std::thread::scope(|s| {
        for (pid, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let results = &results;
            let cfg = cfg.clone();
            s.spawn(move || {
                let mut local = nw_ref.clone();
                let worker_cfg = CubeExtractConfig {
                    name_prefix: format!("p{pid}_{}", cfg.name_prefix),
                    ..cfg
                };
                let rep = extract_common_cubes(&mut local, part, &worker_cfg);
                let block_base = (pid as u32 + 1) * 10_000_000;
                let id_map: FxHashMap<u32, u32> = (n0..local.num_signals() as u32)
                    .map(|id| (id, block_base + (id - n0)))
                    .collect();
                let mut wr = WorkerResult::default();
                for &node in part.iter() {
                    if local.func(node) != nw_ref.func(node) {
                        wr.rewritten
                            .push((node, crate::merge::remap_sop(local.func(node), &id_map)));
                    }
                }
                for id in n0..local.num_signals() as u32 {
                    wr.new_nodes.push(NewNode {
                        worker_id: id_map[&id],
                        name: local.name(id).to_string(),
                        func: crate::merge::remap_sop(local.func(id), &id_map),
                    });
                }
                results.lock().unwrap().push((wr, rep));
            });
        }
    });

    let extract_elapsed = start.elapsed().saturating_sub(partition_elapsed);
    let mut worker_results = Vec::new();
    let mut extractions = 0usize;
    let mut total_value = 0i64;
    for (wr, rep) in results.into_inner().unwrap() {
        worker_results.push(wr);
        extractions += rep.extractions;
        total_value += rep.total_value;
    }
    merge_worker_results(nw, worker_results).expect("disjoint parts merge");
    let elapsed = start.elapsed();
    let merge_elapsed = elapsed.saturating_sub(partition_elapsed + extract_elapsed);

    ExtractReport {
        lc_before,
        lc_after: nw.literal_count(),
        extractions,
        total_value,
        elapsed,
        setup: partition_elapsed,
        phases: vec![
            PhaseTiming::new("partition", partition_elapsed),
            PhaseTiming::new("extract", extract_elapsed),
            PhaseTiming::new("merge", merge_elapsed),
        ],
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};
    use pf_sop::Lit;

    fn sop_of(cubes: &[&[u32]]) -> Sop {
        Sop::from_cubes(
            cubes
                .iter()
                .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
        )
    }

    #[test]
    fn extracts_shared_cube_and_preserves_function() {
        // f = abc + abd + e, g = abq: cube ab shared by 3 rows.
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let c = nw.add_input("c").unwrap();
        let d = nw.add_input("d").unwrap();
        let e = nw.add_input("e").unwrap();
        let q = nw.add_input("q").unwrap();
        let f = nw
            .add_node("f", sop_of(&[&[a, b, c], &[a, b, d], &[e]]))
            .unwrap();
        let g = nw.add_node("g", sop_of(&[&[a, b, q]])).unwrap();
        nw.mark_output(f).unwrap();
        nw.mark_output(g).unwrap();
        let original = nw.clone();

        let report = extract_common_cubes(&mut nw, &[], &CubeExtractConfig::default());
        assert_eq!(report.extractions, 1);
        assert_eq!(report.total_value, 1);
        assert_eq!(
            report.lc_before as i64 - report.lc_after as i64,
            report.total_value
        );
        let x = nw.find("cx_0").unwrap();
        assert_eq!(nw.func(x).literal_count(), 2);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn example_1_1_cube_extraction() {
        // The paper's network has the 2-literal cube "de" in 4 cubes
        // (ade, bde, cde in F and ade, cde in H — per-node cubes count
        // separately): value = n·1 − 2 with n ≥ 4 ⇒ profitable.
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let report = extract_common_cubes(&mut nw, &[], &CubeExtractConfig::default());
        assert!(report.extractions >= 1);
        assert!(report.lc_after < report.lc_before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn no_shared_cubes_no_extractions() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw.add_node("f", sop_of(&[&[a, b]])).unwrap();
        nw.mark_output(f).unwrap();
        let report = extract_common_cubes(&mut nw, &[], &CubeExtractConfig::default());
        assert_eq!(report.extractions, 0);
    }

    #[test]
    fn parallel_variant_preserves_function() {
        let (mut nw, _) = example_1_1();
        let original = nw.clone();
        let report = independent_extract_cubes(
            &mut nw,
            2,
            &CubeExtractConfig::default(),
            &PartitionConfig::default(),
        );
        assert!(report.lc_after <= report.lc_before);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn extraction_chains_into_extracted_nodes() {
        // After extracting abc (3 lits), the remaining abd rows still
        // share ab with the new node's body? The new node's own cubes
        // join the matrix via `targets.push(x)` — verify convergence
        // without looping forever.
        let mut nw = Network::new();
        let vars: Vec<u32> = (0..8)
            .map(|i| nw.add_input(format!("v{i}")).unwrap())
            .collect();
        let f = nw
            .add_node(
                "f",
                sop_of(&[
                    &[vars[0], vars[1], vars[2], vars[3]],
                    &[vars[0], vars[1], vars[2], vars[4]],
                    &[vars[0], vars[1], vars[2], vars[5]],
                    &[vars[0], vars[1], vars[6]],
                    &[vars[0], vars[1], vars[7]],
                ]),
            )
            .unwrap();
        nw.mark_output(f).unwrap();
        let original = nw.clone();
        let report = extract_common_cubes(&mut nw, &[], &CubeExtractConfig::default());
        assert!(report.extractions >= 1);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
    }
}
