//! Sequential kernel extraction — the SIS `gkx` equivalent baseline.
//!
//! The greedy rectangle-cover loop of §2/§3: build the co-kernel cube
//! matrix for the candidate nodes, find the maximum-valued rectangle,
//! extract it (create a node for the kernel, rewrite the covered rows),
//! refresh the affected rows, and repeat until no rectangle has positive
//! value. The [`Engine`] exposes the individual steps so Algorithm R can
//! drive the same loop with a striped search and replicated state.

use crate::cost::Objective;
use crate::ctl::RunCtl;
use crate::report::{ExtractReport, PhaseTiming};
use crate::trace::{Lane, Tracer};
use pf_cache::WarmStart;
use pf_kcmatrix::rectangle::CostModel;
use pf_kcmatrix::{
    best_rectangle_pooled, best_rectangle_pooled_with, best_rectangle_seeded,
    best_rectangle_with_seed, best_rectangles_pooled, best_rectangles_pooled_with,
    best_rectangles_seeded, best_rectangles_with_seed, revalidate_rectangle,
    select_prefix_nonconflicting, CeilingSnapshot, CeilingUpdate, ColIdx, CubeRegistry, KcMatrix,
    LabelGen, Rectangle, SearchConfig, SearchPool, SearchStats,
};
use pf_network::{Network, SignalId};
use pf_sop::fx::{FxHashMap, FxHashSet};
use pf_sop::kernel::KernelConfig;
use pf_sop::{Cube, Sop};
use std::time::Instant;

/// Options for the sequential extractor.
#[derive(Clone, Debug)]
pub struct ExtractConfig {
    /// Kernel enumeration options.
    pub kernel: KernelConfig,
    /// Rectangle search options.
    pub search: SearchConfig,
    /// Hard cap on extractions (safety valve; the loop terminates on its
    /// own because every extraction strictly reduces the literal count).
    pub max_extractions: usize,
    /// Name prefix for extracted nodes (`[prefix]0`, `[prefix]1`, …).
    pub name_prefix: String,
    /// Whether freshly extracted nodes join the candidate set and are
    /// themselves mined for kernels (SIS does this).
    pub extract_from_new: bool,
    /// Optional weighted objective (timing- or power-driven cover, §6's
    /// closing remark). `None` is the paper's literal-count objective.
    pub objective: Option<Objective>,
    /// Cooperative stop control (deadline / external cancellation),
    /// checked at the cover-loop head. Cloning the config shares the
    /// handle, so every worker of a parallel driver stops together.
    pub ctl: RunCtl,
    /// Span/event recorder. Disarmed by default (every hook is one
    /// branch); cloning the config shares the trace, so nested and
    /// parallel drivers all record into the same timeline.
    pub trace: Tracer,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            kernel: KernelConfig::default(),
            search: SearchConfig::default(),
            max_extractions: usize::MAX,
            name_prefix: "kx_".to_string(),
            extract_from_new: true,
            objective: None,
            ctl: RunCtl::new(),
            trace: Tracer::disarmed(),
        }
    }
}

/// The stepwise extraction engine: matrix + registry + label state.
pub struct Engine {
    matrix: KcMatrix,
    registry: CubeRegistry,
    weights: Vec<u32>,
    row_labels: LabelGen,
    col_labels: LabelGen,
    targets: Vec<SignalId>,
    cfg: ExtractConfig,
    counter: usize,
    applied: usize,
    /// Weighted cube values (parallel to `weights`), present iff
    /// `cfg.objective` is set.
    wvals: Vec<u32>,
    /// Best rectangle applied in the previous pass of this engine's
    /// cover loop — re-validated against the current matrix and used to
    /// seed the next search's pruning bound.
    prev_best: Option<Rectangle>,
    /// Persistent search executor, present iff `search.par_threads ≥ 1`:
    /// long-lived workers with reusable scratch and cross-pass
    /// per-column ceilings, replacing per-pass thread spawns.
    pool: Option<SearchPool>,
    /// Columns invalidated by [`Engine::apply`] since the last search —
    /// the pool's ceiling dirty set.
    dirty_cols: Vec<ColIdx>,
    /// Whether the pool has yet to see this engine's matrix (first
    /// search resets the ceilings instead of patching them).
    pool_fresh: bool,
}

/// Starts the fresh-name counter past every `{prefix}{N}` already in the
/// network, so [`Engine::apply`] almost never probes occupied names
/// (each probe used to cost a `format!` + lookup per collision).
fn counter_past_existing(nw: &Network, prefix: &str) -> usize {
    let mut next = 0usize;
    for id in nw.signal_ids() {
        if let Some(tail) = nw.name(id).strip_prefix(prefix) {
            if let Ok(n) = tail.parse::<usize>() {
                next = next.max(n + 1);
            }
        }
    }
    next
}

impl Engine {
    /// Builds the matrix over `targets` (internal nodes of `nw`).
    pub fn new(nw: &Network, targets: &[SignalId], cfg: ExtractConfig) -> Self {
        let registry = CubeRegistry::new();
        let mut matrix = KcMatrix::new();
        let mut row_labels = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        let mut col_labels = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
        for &t in targets {
            matrix.add_node_kernels(
                t,
                nw.func(t),
                &cfg.kernel,
                &registry,
                &mut row_labels,
                &mut col_labels,
            );
        }
        let weights = registry.weights_snapshot();
        let counter = counter_past_existing(nw, &cfg.name_prefix);
        let pool = (cfg.search.par_threads >= 1).then(SearchPool::new);
        let mut engine = Engine {
            matrix,
            registry,
            weights,
            row_labels,
            col_labels,
            targets: targets.to_vec(),
            cfg,
            counter,
            applied: 0,
            wvals: Vec::new(),
            prev_best: None,
            pool,
            dirty_cols: Vec::new(),
            pool_fresh: true,
        };
        engine.refresh_wvals();
        engine
    }

    /// Builds the matrix with the §3 *parallel generation* scheme: the
    /// nodes are conceptually partitioned among `procs` generators, each
    /// enumerating the kernels of its share and labeling the rows with
    /// its processor-offset [`LabelGen`] block; the shares are then
    /// merged **in label order**, which — exactly as the paper's
    /// labeling argument goes — yields the same matrix on every replica
    /// irrespective of generation interleaving.
    ///
    /// Functionally identical to [`Engine::new`] apart from row labels;
    /// rows and columns appear in the same deterministic order.
    pub fn new_parallel(
        nw: &Network,
        targets: &[SignalId],
        cfg: ExtractConfig,
        procs: usize,
    ) -> Self {
        use pf_sop::kernel::kernels_config;
        let procs = procs.max(1);
        // Phase 1 (parallel): each generator enumerates kernels for the
        // targets assigned round-robin to it.
        type Generated = Vec<(u64, SignalId, pf_sop::kernel::CoKernelPair)>;
        let shares: Vec<Generated> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..procs)
                .map(|pid| {
                    let cfg = &cfg;
                    s.spawn(move || {
                        let mut labels = LabelGen::new(pid as u16, LabelGen::DEFAULT_OFFSET);
                        let mut out: Generated = Vec::new();
                        for (k, &t) in targets.iter().enumerate() {
                            if k % procs != pid {
                                continue;
                            }
                            for pair in kernels_config(nw.func(t), &cfg.kernel) {
                                out.push((labels.next(), t, pair));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Phase 2 (the "broadcast"): merge all shares in label order so
        // every replica builds the identical matrix.
        let mut rows: Vec<(u64, SignalId, pf_sop::kernel::CoKernelPair)> =
            shares.into_iter().flatten().collect();
        rows.sort_by_key(|(label, _, _)| *label);

        let registry = CubeRegistry::new();
        let mut matrix = KcMatrix::new();
        // Fresh kernels after extraction get labels from a dedicated
        // high block so they never collide with the generators'.
        let row_labels = LabelGen::new(procs as u16 + 1, LabelGen::DEFAULT_OFFSET);
        let mut col_labels = LabelGen::new(procs as u16 + 1, LabelGen::DEFAULT_OFFSET);
        for (label, node, pair) in rows {
            matrix.add_row(
                label,
                node,
                pair.cokernel,
                &pair.kernel,
                &registry,
                &mut col_labels,
            );
        }
        let weights = registry.weights_snapshot();
        let counter = counter_past_existing(nw, &cfg.name_prefix);
        let pool = (cfg.search.par_threads >= 1).then(SearchPool::new);
        let mut engine = Engine {
            matrix,
            registry,
            weights,
            row_labels,
            col_labels,
            targets: targets.to_vec(),
            cfg,
            counter,
            applied: 0,
            wvals: Vec::new(),
            prev_best: None,
            pool,
            dirty_cols: Vec::new(),
            pool_fresh: true,
        };
        engine.refresh_wvals();
        engine
    }

    /// Extends the weighted-value cache for newly interned cubes, one
    /// registry lock for the whole batch (not one lock + clone per id).
    fn refresh_wvals(&mut self) {
        let Some(obj) = &self.cfg.objective else {
            return;
        };
        let wvals = &mut self.wvals;
        self.registry.for_each_from(wvals.len(), |_, cube| {
            wvals.push(obj.cube_weight(cube));
        });
    }

    /// Pre-spawns the pool's background workers (no-op for a pool-less
    /// engine or `par_threads ≤ 1`). Drivers call this before their
    /// measured cover loop so no pass pays spawn latency.
    pub fn warm_pool(&mut self) {
        let threads = self.cfg.search.par_threads;
        if let Some(pool) = self.pool.as_mut() {
            pool.warm(threads);
        }
    }

    /// Hands an existing pool to this engine (replacing any own pool),
    /// reusing its warmed threads and scratch; its ceilings are reset on
    /// the first search. Only meaningful when `par_threads ≥ 1`.
    pub fn adopt_pool(&mut self, pool: SearchPool) {
        if self.cfg.search.par_threads >= 1 {
            self.pool = Some(pool);
            self.pool_fresh = true;
        }
    }

    /// Takes the engine's pool back out (e.g. to reuse it for the next
    /// job on this worker thread).
    pub fn take_pool(&mut self) -> Option<SearchPool> {
        self.pool.take()
    }

    /// The pool's `tile` phase counters: full panel (re)builds and
    /// incrementally re-encoded columns so far. `(0, 0)` for a pool-less
    /// engine or `tile_width == 0`.
    pub fn tile_counters(&self) -> (u64, u64) {
        self.pool
            .as_ref()
            .map_or((0, 0), |p| (p.tile_rebuilds(), p.tile_synced_cols()))
    }

    /// The matrix (for inspection / rendering).
    pub fn matrix(&self) -> &KcMatrix {
        &self.matrix
    }

    /// Searches for the best rectangle; `stripe` optionally restricts
    /// the leftmost column as in Algorithm R. Returns the full
    /// [`SearchStats`] (visited / pruned / bound-update counters) so
    /// callers can trace per-pass search behaviour.
    pub fn search(&mut self, stripe: Option<(u32, u32)>) -> (Option<Rectangle>, SearchStats) {
        let cfg = SearchConfig {
            stripe,
            ..self.cfg.search.clone()
        };
        let seed = self.prev_best.as_ref();
        if let Some(pool) = self.pool.as_mut() {
            // Pooled pass: the first one over this matrix resets the
            // ceilings; later ones only invalidate the columns `apply`
            // dirtied, so unchanged leftmost-column subtrees prune from
            // their surviving ceilings immediately.
            let update = if self.pool_fresh {
                CeilingUpdate::Reset
            } else {
                CeilingUpdate::Dirty(&self.dirty_cols)
            };
            let out = match &self.cfg.objective {
                None => {
                    let w = &self.weights;
                    best_rectangle_pooled(
                        &self.matrix,
                        &|id| w[id as usize],
                        &cfg,
                        seed,
                        pool,
                        update,
                    )
                }
                Some(obj) => {
                    let wv = &self.wvals;
                    let model = CostModel {
                        cube_value: &|id| wv[id as usize],
                        row_cost: &|cok| obj.row_cost(cok),
                        col_cost: &|cube| obj.col_cost(cube),
                    };
                    best_rectangle_pooled_with(&self.matrix, &model, &cfg, seed, pool, update)
                }
            };
            self.pool_fresh = false;
            self.dirty_cols.clear();
            return out;
        }
        match &self.cfg.objective {
            None => {
                let w = &self.weights;
                best_rectangle_seeded(&self.matrix, &|id| w[id as usize], &cfg, seed)
            }
            Some(obj) => {
                let wv = &self.wvals;
                let model = CostModel {
                    cube_value: &|id| wv[id as usize],
                    row_cost: &|cok| obj.row_cost(cok),
                    col_cost: &|cube| obj.col_cost(cube),
                };
                best_rectangle_with_seed(&self.matrix, &model, &cfg, seed)
            }
        }
    }

    /// Plural [`Engine::search`]: collects the canonical top
    /// `search.topk` rectangles of this pass, best-first. Same pooled /
    /// pool-less dispatch and ceiling bookkeeping as the singular
    /// search; with `topk ≤ 1` the result is the singular winner alone.
    pub fn search_batch(&mut self, stripe: Option<(u32, u32)>) -> (Vec<Rectangle>, SearchStats) {
        let cfg = SearchConfig {
            stripe,
            ..self.cfg.search.clone()
        };
        let seed = self.prev_best.as_ref();
        if let Some(pool) = self.pool.as_mut() {
            let update = if self.pool_fresh {
                CeilingUpdate::Reset
            } else {
                CeilingUpdate::Dirty(&self.dirty_cols)
            };
            let out = match &self.cfg.objective {
                None => {
                    let w = &self.weights;
                    best_rectangles_pooled(
                        &self.matrix,
                        &|id| w[id as usize],
                        &cfg,
                        seed,
                        pool,
                        update,
                    )
                }
                Some(obj) => {
                    let wv = &self.wvals;
                    let model = CostModel {
                        cube_value: &|id| wv[id as usize],
                        row_cost: &|cok| obj.row_cost(cok),
                        col_cost: &|cube| obj.col_cost(cube),
                    };
                    best_rectangles_pooled_with(&self.matrix, &model, &cfg, seed, pool, update)
                }
            };
            self.pool_fresh = false;
            self.dirty_cols.clear();
            return out;
        }
        match &self.cfg.objective {
            None => {
                let w = &self.weights;
                best_rectangles_seeded(&self.matrix, &|id| w[id as usize], &cfg, seed)
            }
            Some(obj) => {
                let wv = &self.wvals;
                let model = CostModel {
                    cube_value: &|id| wv[id as usize],
                    row_cost: &|cok| obj.row_cost(cok),
                    col_cost: &|cube| obj.col_cost(cube),
                };
                best_rectangles_with_seed(&self.matrix, &model, &cfg, seed)
            }
        }
    }

    /// Canonical non-conflicting *prefix* of `candidates` against the
    /// engine's current matrix (see [`pf_kcmatrix::conflict`]), at most
    /// `max` rectangles, in canonical order.
    ///
    /// This is the batched cover's wave selection: it stops at the first
    /// conflict rather than skipping over it, because the callers
    /// re-validate and re-rank the survivors before the next wave.
    /// Skip-over selection (`select_nonconflicting`) applied stale
    /// post-conflict candidates and inflated the extraction count over
    /// the one-per-pass engine (e.g. gen:dalu@1 with `topk 16`: 22
    /// extractions / LC 2131 vs the singular 18 / 2130; the prefix rule
    /// restores 18 / 2130 at 4.5 rectangles per search pass).
    pub fn select_batch(&self, candidates: &[Rectangle], max: usize) -> Vec<Rectangle> {
        select_prefix_nonconflicting(&self.matrix, candidates, max)
    }

    /// Re-validates a candidate's column set against the current matrix
    /// (maximal support, exact value) — `None` when it no longer denotes
    /// a positive-value extraction. Lets the batched cover loop drain
    /// conflict-rejected candidates after a batch apply without another
    /// search pass.
    pub fn revalidate(&self, rect: &Rectangle) -> Option<Rectangle> {
        match &self.cfg.objective {
            None => {
                let w = &self.weights;
                let value_of = |id: pf_kcmatrix::CubeId| w[id as usize];
                let model = CostModel::area(&value_of);
                revalidate_rectangle(&self.matrix, &model, &self.cfg.search, rect)
            }
            Some(obj) => {
                let wv = &self.wvals;
                let model = CostModel {
                    cube_value: &|id| wv[id as usize],
                    row_cost: &|cok| obj.row_cost(cok),
                    col_cost: &|cube| obj.col_cost(cube),
                };
                revalidate_rectangle(&self.matrix, &model, &self.cfg.search, rect)
            }
        }
    }

    /// Applies a rectangle: creates the kernel node, rewrites every
    /// covered row's node, refreshes the affected matrix rows. Returns
    /// the new node id.
    ///
    /// The literal count drops by exactly `rect.value` (checked in debug
    /// builds).
    pub fn apply(&mut self, nw: &mut Network, rect: &Rectangle) -> SignalId {
        #[cfg(debug_assertions)]
        let lc_before = nw.literal_count();

        let kernel = rect.kernel(&self.matrix);
        // Skip names already taken (e.g. from a previous extraction pass
        // over the same network).
        let name = loop {
            let candidate = format!("{}{}", self.cfg.name_prefix, self.counter);
            self.counter += 1;
            if nw.find(&candidate).is_none() {
                break candidate;
            }
        };
        let x = nw
            .add_node(name, kernel.clone())
            .expect("extracted node name is fresh");
        let x_lit = nw.var(x).lit();

        // Group chosen rows by node: covered cubes (hashed — the filter
        // below probes once per remaining cube) and replacement cubes.
        let mut by_node: FxHashMap<SignalId, (FxHashSet<Cube>, Vec<Cube>)> = FxHashMap::default();
        for &r in &rect.rows {
            let row = &self.matrix.rows()[r];
            let entry = by_node.entry(row.node).or_default();
            for &c in &rect.cols {
                let covered = row
                    .cokernel
                    .product(&self.matrix.cols()[c].cube)
                    .expect("disjoint by construction");
                entry.0.insert(covered);
            }
            entry.1.push(
                row.cokernel
                    .product(&Cube::single(x_lit))
                    .expect("fresh variable"),
            );
        }

        let mut affected: Vec<SignalId> = Vec::with_capacity(by_node.len());
        for (node, (covered, additions)) in by_node {
            let f = nw.func(node);
            let remaining = f
                .iter()
                .filter(|c| !covered.contains(*c))
                .cloned()
                .chain(additions);
            let f_new = Sop::from_cubes(remaining);
            nw.set_func(node, f_new).expect("node exists");
            affected.push(node);
        }

        // Ceiling bookkeeping (pooled engines only): every column with an
        // entry in a row about to be tombstoned goes dirty now, and every
        // column of a row appended below goes dirty after. Clean columns
        // keep byte-identical subtrees — their support rows, entry cubes
        // and values are all untouched — so their ceilings stay sound.
        let rows_before = self.matrix.rows().len();
        if self.pool.is_some() {
            let nodes: FxHashSet<SignalId> = affected.iter().copied().collect();
            for row in self.matrix.rows() {
                if row.alive && nodes.contains(&row.node) {
                    for &(c, _) in &row.entries {
                        self.dirty_cols.push(c);
                    }
                }
            }
        }

        // Refresh matrix rows for the affected nodes…
        for &n in &affected {
            self.matrix.remove_node_rows(n);
            self.matrix.add_node_kernels(
                n,
                nw.func(n),
                &self.cfg.kernel,
                &self.registry,
                &mut self.row_labels,
                &mut self.col_labels,
            );
        }
        // …and mine the new node too, if configured.
        if self.cfg.extract_from_new {
            self.targets.push(x);
            self.matrix.add_node_kernels(
                x,
                nw.func(x),
                &self.cfg.kernel,
                &self.registry,
                &mut self.row_labels,
                &mut self.col_labels,
            );
        }
        if self.pool.is_some() {
            for row in &self.matrix.rows()[rows_before..] {
                for &(c, _) in &row.entries {
                    self.dirty_cols.push(c);
                }
            }
            self.dirty_cols.sort_unstable();
            self.dirty_cols.dedup();
        }
        self.registry.extend_weights(&mut self.weights);
        self.refresh_wvals();

        #[cfg(debug_assertions)]
        if self.cfg.objective.is_none() {
            let lc_after = nw.literal_count();
            debug_assert_eq!(
                lc_before as i64 - lc_after as i64,
                rect.value,
                "rectangle value must equal the literal saving"
            );
        }
        self.applied += 1;
        self.prev_best = Some(rect.clone());
        x
    }

    /// Number of extractions applied so far.
    pub fn extractions(&self) -> usize {
        self.applied
    }

    /// Seeds the engine from another run's warm-start hints, valid only
    /// when this engine's matrix is byte-identical to the one the hints
    /// were captured over (the cache guarantees this by keying hints on
    /// the network content digest). Ceilings seed the pool (skipped for
    /// pool-less engines; config drift self-guards via the snapshot's
    /// embedded fingerprint); `best` seeds the first search's pruning
    /// bound exactly like a previous pass's winner would — it is
    /// re-validated against the matrix before use, and because it *is*
    /// the first-pass winner of an identical matrix, the seeded search
    /// returns the identical rectangle.
    pub fn seed_warm_start(&mut self, ceilings: Option<&CeilingSnapshot>, best: Option<Rectangle>) {
        if let (Some(pool), Some(snap)) = (self.pool.as_mut(), ceilings) {
            pool.seed_ceilings(snap);
            self.pool_fresh = false;
            self.dirty_cols.clear();
        }
        if best.is_some() {
            self.prev_best = best;
        }
    }

    /// Exports the pool's current per-column ceilings for a future
    /// warm start (`None` for pool-less engines or before any pooled
    /// search). Meaningful as hints only right after the *first* search
    /// pass — later passes describe the partially rewritten matrix.
    pub fn export_warm_ceilings(&self) -> Option<CeilingSnapshot> {
        self.pool.as_ref().and_then(|p| p.export_ceilings())
    }
}

/// Ends a per-pass `search` span, attaching the chosen rectangle's
/// value/dims and the search counters. Shared by every driver so the
/// span vocabulary stays identical (docs/OBSERVABILITY.md).
pub(crate) fn end_search_span(
    lane: &mut Lane,
    span: crate::trace::Span,
    rect: Option<&Rectangle>,
    stats: &SearchStats,
) {
    lane.end_with(span, || {
        let mut args = vec![
            ("visited", stats.visited as i64),
            ("pruned", stats.pruned as i64),
            ("bound_updates", stats.bound_updates as i64),
        ];
        if let Some(r) = rect {
            args.push(("value", r.value));
            args.push(("rows", r.rows.len() as i64));
            args.push(("cols", r.cols.len() as i64));
        }
        args
    });
}

/// Runs kernel extraction to completion on `targets` (or on all internal
/// nodes when `targets` is empty). Returns the report.
///
/// ```
/// use pf_core::{extract_kernels, ExtractConfig};
/// use pf_network::example::example_1_1;
///
/// // The paper's Example 1.1 network: 33 literals before, 21 after the
/// // exact greedy rectangle cover (the paper's own SIS run stops at 22).
/// let (mut nw, _) = example_1_1();
/// let report = extract_kernels(&mut nw, &[], &ExtractConfig::default());
/// assert_eq!((report.lc_before, report.lc_after), (33, 21));
/// assert_eq!(report.extractions, 3);
/// ```
pub fn extract_kernels(
    nw: &mut Network,
    targets: &[SignalId],
    cfg: &ExtractConfig,
) -> ExtractReport {
    let mut pool = None;
    extract_kernels_pooled(nw, targets, cfg, &mut pool)
}

/// [`extract_kernels`] with an externally owned [`SearchPool`] slot: a
/// pool left in `*pool` is adopted (reusing its warmed threads and
/// scratch across jobs — the resident-service pattern), and the engine's
/// pool is handed back through the slot when the run ends. When
/// `par_threads` is 0 the slot is ignored and the classic spawn-free
/// sequential engine runs as before.
///
/// Phases: `matrix` (build), `pool` (pool adoption + worker pre-spawn,
/// before the cover clock starts), `cover` (the extraction loop).
pub fn extract_kernels_pooled(
    nw: &mut Network,
    targets: &[SignalId],
    cfg: &ExtractConfig,
    pool: &mut Option<SearchPool>,
) -> ExtractReport {
    extract_kernels_warm(nw, targets, cfg, pool, None, None)
}

/// [`extract_kernels_pooled`] with warm-start plumbing: `warm` seeds the
/// engine (first-pass ceilings + previous winner) before the cover loop,
/// and `capture` receives this run's own hints right after the first
/// pass — the only moment the ceilings describe the initial matrix. Both
/// are correctness-neutral: a warm-seeded run extracts the byte-identical
/// network a cold run would (see [`Engine::seed_warm_start`]).
pub(crate) fn extract_kernels_warm(
    nw: &mut Network,
    targets: &[SignalId],
    cfg: &ExtractConfig,
    pool: &mut Option<SearchPool>,
    warm: Option<&WarmStart>,
    mut capture: Option<&mut Option<WarmStart>>,
) -> ExtractReport {
    let targets: Vec<SignalId> = if targets.is_empty() {
        nw.node_ids().collect()
    } else {
        targets.to_vec()
    };
    // Lane registration is profiling-harness cost, not driver cost:
    // open it before the clock starts so traced runs keep phase spans
    // covering essentially all of `elapsed`.
    let mut lane = cfg.trace.lane(&cfg.name_prefix);
    let start = Instant::now();
    let lc_before = nw.literal_count();
    let mut report = ExtractReport {
        lc_before,
        lc_after: lc_before,
        ..Default::default()
    };
    // A job whose deadline already passed (e.g. it sat in a queue) skips
    // even the matrix build. Still report well-formed phases: everything
    // spent so far was pre-matrix bookkeeping.
    if report.note_stop(&cfg.ctl) {
        report.elapsed = start.elapsed();
        report.phases = vec![
            PhaseTiming::new("matrix", report.elapsed),
            PhaseTiming::new("pool", std::time::Duration::ZERO),
            PhaseTiming::new("cover", std::time::Duration::ZERO),
        ];
        return report;
    }
    let matrix_span = lane.start("matrix");
    let mut engine = Engine::new(nw, &targets, cfg.clone());
    lane.end(matrix_span);
    let matrix_elapsed = start.elapsed();
    // Pool setup is deliberately its own phase, outside the cover clock:
    // adopting a still-warm pool from the previous job (or pre-spawning
    // this run's workers) is exactly the setup cost the persistent
    // executor amortizes away.
    let pool_span = lane.start("pool");
    if let Some(prev) = pool.take() {
        engine.adopt_pool(prev);
    }
    engine.warm_pool();
    if let Some(w) = warm {
        engine.seed_warm_start(w.ceilings.as_ref(), Some(w.best.clone()));
    }
    lane.end(pool_span);
    let pool_elapsed = start.elapsed().saturating_sub(matrix_elapsed);
    let cover_span = lane.start("cover");
    let mut first_pass = true;
    if cfg.search.topk > 1 {
        // Batched cover: each pass collects the canonical top-K
        // rectangles, applies the greedy maximal non-conflicting subset
        // (in canonical order, so quality-ordering is preserved within
        // the batch), and only then searches again. Fewer passes, same
        // greedy-first guarantee: the canonical best of each pass is
        // always selected and applied.
        while engine.extractions() < cfg.max_extractions {
            cfg.ctl.fault_point("seq:cover");
            if report.note_stop(&cfg.ctl) {
                break;
            }
            report.passes += 1;
            let pass = lane.start("search");
            let (cands, stats) = engine.search_batch(None);
            report.budget_exhausted |= stats.budget_exhausted;
            end_search_span(&mut lane, pass, cands.first(), &stats);
            if first_pass {
                first_pass = false;
                if let (Some(cap), Some(r)) = (capture.as_deref_mut(), cands.first()) {
                    *cap = Some(WarmStart {
                        ceilings: engine.export_warm_ceilings(),
                        best: r.clone(),
                    });
                }
            }
            if cands.is_empty() {
                break;
            }
            report.batch_candidates += cands.len();
            let cands_len = cands.len();
            let mut accepted_this_pass = 0usize;
            // Apply in waves: select the canonical non-conflicting
            // *prefix*, apply it, then *re-validate* the surviving
            // candidates against the updated matrix (their column sets
            // survive; supports and values are recomputed exactly) and
            // select again — all without paying another search. The
            // wave loop terminates because each wave applies at least
            // one rectangle and removes it from the pool.
            //
            // The prefix rule (stop at the first conflict, instead of
            // skipping over it) is what keeps the extraction count
            // honest: the conflict winner's apply rewrites the loser's
            // rows, which can shrink every candidate ranked below it, so
            // applying post-conflict candidates blind re-extracts
            // already-covered kernels as small flat extractions the
            // one-per-pass engine never makes. With the prefix rule each
            // wave's applies are ranked against a fully re-validated
            // pool, and the batched cover reproduces the one-per-pass
            // trajectory while still applying several rectangles per
            // search.
            let mut wave = cands;
            while !wave.is_empty() && engine.extractions() < cfg.max_extractions {
                let remaining = cfg.max_extractions - engine.extractions();
                let selected = engine.select_batch(&wave, remaining);
                // The canonical best never conflicts with the empty
                // selection, so `selected` is non-empty here.
                for rect in &selected {
                    report.total_value += rect.value;
                    let apply_span = lane.start("apply");
                    engine.apply(nw, rect);
                    lane.end_with(apply_span, || vec![("value", rect.value)]);
                    report.extractions += 1;
                    accepted_this_pass += 1;
                }
                wave = wave
                    .into_iter()
                    .filter(|c| !selected.contains(c))
                    .filter_map(|c| engine.revalidate(&c))
                    .collect();
            }
            report.batch_accepted += accepted_this_pass;
            // A drained wave can apply more rectangles than the search
            // returned candidates (a re-validated candidate applies
            // under a fresh support), so the rejected count saturates.
            report.batch_rejected += cands_len.saturating_sub(accepted_this_pass);
            lane.event("batch", || {
                vec![
                    ("candidates", cands_len as i64),
                    ("accepted", accepted_this_pass as i64),
                ]
            });
        }
    } else {
        while engine.extractions() < cfg.max_extractions {
            // The cover-loop head is the driver's barrier checkpoint, and
            // therefore also its fault-injection site.
            cfg.ctl.fault_point("seq:cover");
            if report.note_stop(&cfg.ctl) {
                break;
            }
            report.passes += 1;
            let pass = lane.start("search");
            let (rect, stats) = engine.search(None);
            report.budget_exhausted |= stats.budget_exhausted;
            end_search_span(&mut lane, pass, rect.as_ref(), &stats);
            if first_pass {
                first_pass = false;
                if let (Some(cap), Some(r)) = (capture.as_deref_mut(), rect.as_ref()) {
                    *cap = Some(WarmStart {
                        ceilings: engine.export_warm_ceilings(),
                        best: r.clone(),
                    });
                }
            }
            let Some(rect) = rect else { break };
            report.total_value += rect.value;
            let apply_span = lane.start("apply");
            engine.apply(nw, &rect);
            lane.end_with(apply_span, || vec![("value", rect.value)]);
            report.extractions += 1;
        }
    }
    lane.end(cover_span);
    // `tile` phase counters: how the resident panel mirror was kept in
    // sync across the cover's passes (full rebuilds vs incrementally
    // re-encoded columns). Emitted once per run — the counters are
    // cumulative over the pool's passes.
    if cfg.search.tile_width > 0 {
        let (rebuilds, synced_cols) = engine.tile_counters();
        lane.event("tile", || {
            vec![
                ("rebuilds", rebuilds as i64),
                ("synced_cols", synced_cols as i64),
            ]
        });
    }
    *pool = engine.take_pool();
    report.lc_after = nw.literal_count();
    report.elapsed = start.elapsed();
    report.setup = matrix_elapsed;
    report.phases = vec![
        PhaseTiming::new("matrix", matrix_elapsed),
        PhaseTiming::new("pool", pool_elapsed),
        PhaseTiming::new(
            "cover",
            report.elapsed.saturating_sub(matrix_elapsed + pool_elapsed),
        ),
    ];
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_network::example::example_1_1;
    use pf_network::sim::{equivalent_random, EquivConfig};

    #[test]
    fn example_1_1_reaches_21_literals() {
        // Greedy maximum-rectangle extraction on the paper's network:
        // 33 → 25 (X = a+b, value 8) → 22 (Y = a+c, value 3)
        //    → 21 (Z = X+c, value 1). SIS's gkx stops at 22; the exact
        // rectangle cover finds one more single-row factor.
        let (mut nw, _ids) = example_1_1();
        let original = nw.clone();
        let report = extract_kernels(&mut nw, &[], &ExtractConfig::default());
        assert_eq!(report.lc_before, 33);
        assert_eq!(report.lc_after, 21);
        assert_eq!(report.extractions, 3);
        assert_eq!(report.total_value, 12);
        assert!(!report.budget_exhausted);
        assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn first_extraction_is_a_plus_b() {
        let (mut nw, ids) = example_1_1();
        let cfg = ExtractConfig {
            max_extractions: 1,
            ..ExtractConfig::default()
        };
        let report = extract_kernels(&mut nw, &[], &cfg);
        assert_eq!(report.lc_after, 25);
        assert_eq!(report.total_value, 8);
        let x = nw.find("kx_0").unwrap();
        // X = a + b
        assert_eq!(nw.func(x).num_cubes(), 2);
        assert_eq!(nw.func(x).literal_count(), 2);
        // F and G use it, H doesn't.
        assert!(nw.fanins(ids.f).contains(&x));
        assert!(nw.fanins(ids.g).contains(&x));
        assert!(!nw.fanins(ids.h).contains(&x));
    }

    #[test]
    fn targets_restrict_the_candidate_set() {
        // Only F: the a+b rectangle over F alone has value
        // 10 − 5 − 2 = 3; the best F-only rectangle overall is checked
        // just for positivity and that G, H stay untouched.
        let (mut nw, ids) = example_1_1();
        let g_before = nw.func(ids.g).clone();
        let h_before = nw.func(ids.h).clone();
        let report = extract_kernels(&mut nw, &[ids.f], &ExtractConfig::default());
        assert!(report.lc_after < report.lc_before);
        assert_eq!(nw.func(ids.g), &g_before);
        assert_eq!(nw.func(ids.h), &h_before);
    }

    #[test]
    fn no_kernels_means_no_extractions() {
        let mut nw = Network::new();
        let a = nw.add_input("a").unwrap();
        let b = nw.add_input("b").unwrap();
        let f = nw
            .add_node(
                "f",
                Sop::from_cubes([Cube::from_lits([pf_sop::Lit::pos(a), pf_sop::Lit::pos(b)])]),
            )
            .unwrap();
        nw.mark_output(f).unwrap();
        let report = extract_kernels(&mut nw, &[], &ExtractConfig::default());
        assert_eq!(report.extractions, 0);
        assert_eq!(report.lc_before, report.lc_after);
    }

    #[test]
    fn expired_deadline_stops_before_any_extraction() {
        let (mut nw, _) = example_1_1();
        let cfg = ExtractConfig {
            ctl: RunCtl::with_deadline(std::time::Duration::ZERO),
            ..ExtractConfig::default()
        };
        let report = extract_kernels(&mut nw, &[], &cfg);
        assert!(report.timed_out);
        assert!(!report.cancelled);
        assert_eq!(report.extractions, 0);
        assert_eq!(report.lc_after, report.lc_before);
    }

    #[test]
    fn cancelled_ctl_stops_and_reports() {
        let (mut nw, _) = example_1_1();
        let cfg = ExtractConfig::default();
        cfg.ctl.cancel();
        let report = extract_kernels(&mut nw, &[], &cfg);
        assert!(report.cancelled);
        assert!(!report.timed_out);
        assert_eq!(report.extractions, 0);
    }

    #[test]
    fn phases_cover_elapsed() {
        let (mut nw, _) = example_1_1();
        let report = extract_kernels(&mut nw, &[], &ExtractConfig::default());
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.phases[0].name, "matrix");
        assert_eq!(report.phases[1].name, "pool");
        assert_eq!(report.phases[2].name, "cover");
        let sum: std::time::Duration = report.phases.iter().map(|p| p.elapsed).sum();
        assert!(sum <= report.elapsed + std::time::Duration::from_millis(1));
    }

    #[test]
    fn pooled_engine_matches_classic_across_thread_counts() {
        // Byte-identical extraction across engine modes: classic
        // sequential (par_threads = 0) vs the pooled executor at several
        // widths, on the paper network where the canonical parallel
        // winner coincides with the classic one at every pass.
        let (classic_nw, _) = example_1_1();
        let mut classic = classic_nw.clone();
        let classic_report = extract_kernels(&mut classic, &[], &ExtractConfig::default());
        for threads in [1usize, 2, 4] {
            let mut cfg = ExtractConfig::default();
            cfg.search.par_threads = threads;
            let (mut nw, _) = example_1_1();
            let report = extract_kernels(&mut nw, &[], &cfg);
            assert_eq!(
                report.lc_after, classic_report.lc_after,
                "threads={threads}"
            );
            assert_eq!(report.total_value, classic_report.total_value);
            assert_eq!(report.extractions, classic_report.extractions);
            // Byte-identical networks: same nodes, names and functions.
            let dump = |n: &Network| {
                let mut v: Vec<String> = n
                    .node_ids()
                    .map(|id| format!("{}={:?}", n.name(id), n.func(id)))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(dump(&nw), dump(&classic), "threads={threads}");
        }
    }

    #[test]
    fn pooled_run_reuses_one_pool_and_never_respawns_mid_cover() {
        let mut cfg = ExtractConfig::default();
        cfg.search.par_threads = 2;
        let (mut nw, _) = example_1_1();
        let mut pool = None;
        let report = extract_kernels_pooled(&mut nw, &[], &cfg, &mut pool);
        assert_eq!(report.lc_after, 21);
        let pool = pool.expect("pooled run hands the pool back");
        // One background worker for a 2-wide run, spawned exactly once
        // (in the pool phase), however many passes the cover loop ran.
        assert_eq!(pool.spawned_threads(), 1);
        assert!(pool.passes() >= report.extractions as u64);
    }

    #[test]
    fn pool_slot_survives_across_jobs() {
        let mut cfg = ExtractConfig::default();
        cfg.search.par_threads = 2;
        let mut pool = None;
        let mut last_lc = 0;
        for _ in 0..3 {
            let (mut nw, _) = example_1_1();
            let report = extract_kernels_pooled(&mut nw, &[], &cfg, &mut pool);
            last_lc = report.lc_after;
        }
        assert_eq!(last_lc, 21);
        // Three jobs, one pool, one spawn: jobs 2 and 3 adopted it warm.
        assert_eq!(pool.expect("slot refilled").spawned_threads(), 1);
    }

    #[test]
    fn fresh_name_counter_skips_existing_extraction_names() {
        // A network that already contains kx_0/kx_7 (e.g. from an earlier
        // extraction pass) must not make apply probe 8 occupied names.
        let (mut nw, _) = example_1_1();
        let report1 = extract_kernels(&mut nw, &[], &ExtractConfig::default());
        assert!(report1.extractions > 0);
        // Second run over the already-extracted network: new names start
        // past the existing kx_* block and extraction still converges.
        let report2 = extract_kernels(&mut nw, &[], &ExtractConfig::default());
        assert!(report2.lc_after <= report1.lc_after);
        assert!(nw.validate().is_ok());
    }

    #[test]
    fn max_extractions_caps_the_loop() {
        let (mut nw, _) = example_1_1();
        let cfg = ExtractConfig {
            max_extractions: 2,
            ..ExtractConfig::default()
        };
        let report = extract_kernels(&mut nw, &[], &cfg);
        assert_eq!(report.extractions, 2);
        assert_eq!(report.lc_after, 22); // the SIS stopping point
    }

    #[test]
    fn lc_drop_matches_total_value() {
        let (mut nw, _) = example_1_1();
        let report = extract_kernels(&mut nw, &[], &ExtractConfig::default());
        assert_eq!(
            report.lc_before as i64 - report.lc_after as i64,
            report.total_value
        );
    }

    #[test]
    fn extract_from_new_false_skips_new_nodes() {
        let (mut nw, _) = example_1_1();
        let cfg = ExtractConfig {
            extract_from_new: false,
            ..ExtractConfig::default()
        };
        let report = extract_kernels(&mut nw, &[], &cfg);
        // Same result here (new nodes are tiny), but the engine must not
        // crash and must still converge.
        assert!(report.lc_after <= 25);
    }

    #[test]
    fn engine_stepwise_matches_batch() {
        let (mut nw1, _) = example_1_1();
        let (mut nw2, _) = example_1_1();
        let targets: Vec<SignalId> = nw1.node_ids().collect();
        let mut engine = Engine::new(&nw1, &targets, ExtractConfig::default());
        while let (Some(rect), _) = engine.search(None) {
            engine.apply(&mut nw1, &rect);
        }
        extract_kernels(&mut nw2, &[], &ExtractConfig::default());
        assert_eq!(nw1.literal_count(), nw2.literal_count());
    }

    #[test]
    fn batched_cover_keeps_quality_and_counts_passes() {
        let (mut nw0, _) = example_1_1();
        let oracle = extract_kernels(&mut nw0, &[], &ExtractConfig::default());
        assert_eq!(oracle.passes, oracle.extractions + 1);
        assert_eq!(oracle.batch_candidates, 0);
        for topk in [2usize, 4, 16] {
            let mut cfg = ExtractConfig::default();
            cfg.search.topk = topk;
            let (mut nw, _) = example_1_1();
            let original = nw.clone();
            let report = extract_kernels(&mut nw, &[], &cfg);
            // The tiny paper network: every candidate overlaps F/G/H, so
            // batching converges to the byte-same 21-literal result.
            assert_eq!(report.lc_after, oracle.lc_after, "topk={topk}");
            assert!(report.passes <= oracle.passes);
            assert_eq!(report.batch_accepted, report.extractions);
            assert_eq!(
                report.batch_candidates,
                report.batch_accepted + report.batch_rejected
            );
            assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
            assert!(nw.validate().is_ok());
        }
    }

    #[test]
    fn batch_drain_cuts_passes_on_planted_kernels() {
        // A network with node-disjoint planted kernels batches several
        // extractions per pass; the drain loop re-validates rejected
        // candidates so a pass keeps applying until the pool is dry.
        let profile = pf_workloads::CircuitProfile::small("batchtest", 7);
        let mut cfg = ExtractConfig::default();
        let mut nw = pf_workloads::generate(&profile);
        let oracle = extract_kernels(&mut nw, &[], &cfg);
        assert!(oracle.extractions >= 4, "workload must have extractions");

        cfg.search.topk = 16;
        let mut nwb = pf_workloads::generate(&profile);
        let report = extract_kernels(&mut nwb, &[], &cfg);
        assert!(
            report.passes < oracle.passes,
            "batching must cut passes: {} vs {}",
            report.passes,
            oracle.passes
        );
        assert!(report.rects_per_pass() > 1.0);
        // Quality parity within 1% of the one-per-pass oracle.
        let tol = (oracle.lc_after as f64 * 0.01).ceil() as usize;
        assert!(
            report.lc_after <= oracle.lc_after + tol,
            "batched {} vs oracle {}",
            report.lc_after,
            oracle.lc_after
        );
        assert!(nwb.validate().is_ok());
    }

    #[test]
    fn batched_extractions_never_inflate_over_singular() {
        // Regression: the wave-drain loop used to re-validate conflict
        // losers whose kernel columns an earlier wave of the same pass
        // had already extracted. A loser could come back with a smaller
        // live support and positive value, re-extracting an
        // already-covered kernel into a duplicate node — more
        // extractions than the one-per-pass path for the same (or
        // worse) final literal count. With the applied-column dedupe,
        // batching can only merge passes, never invent extractions.
        for seed in [7u64, 13, 29] {
            let mut profile = pf_workloads::scale_profile(
                &pf_workloads::profile_by_name("dalu").expect("dalu profile exists"),
                0.35,
            );
            profile.seed = seed;
            let mut nw1 = pf_workloads::generate(&profile);
            let oracle = extract_kernels(&mut nw1, &[], &ExtractConfig::default());
            for topk in [4usize, 16] {
                let mut cfg = ExtractConfig::default();
                cfg.search.topk = topk;
                let mut nwb = pf_workloads::generate(&profile);
                let report = extract_kernels(&mut nwb, &[], &cfg);
                assert!(
                    report.extractions <= oracle.extractions,
                    "seed={seed} topk={topk}: batched {} extractions vs singular {}",
                    report.extractions,
                    oracle.extractions
                );
                assert!(
                    report.lc_after <= oracle.lc_after,
                    "seed={seed} topk={topk}: batched lc {} vs singular {}",
                    report.lc_after,
                    oracle.lc_after
                );
                assert!(nwb.validate().is_ok());
            }
        }
    }

    #[test]
    fn batched_max_extractions_still_caps() {
        let (mut nw, _) = example_1_1();
        let mut cfg = ExtractConfig {
            max_extractions: 2,
            ..ExtractConfig::default()
        };
        cfg.search.topk = 8;
        let report = extract_kernels(&mut nw, &[], &cfg);
        assert!(report.extractions <= 2);
    }

    #[test]
    fn parallel_generation_matches_sequential_matrix() {
        // §3's labeled parallel generation must produce the same rows
        // and columns as the serial build, for any generator count.
        let (nw, _) = example_1_1();
        let targets: Vec<SignalId> = nw.node_ids().collect();
        let serial = Engine::new(&nw, &targets, ExtractConfig::default());
        for procs in [1usize, 2, 3, 7] {
            let par = Engine::new_parallel(&nw, &targets, ExtractConfig::default(), procs);
            assert_eq!(
                par.matrix().num_alive_rows(),
                serial.matrix().num_alive_rows(),
                "procs={procs}"
            );
            assert_eq!(par.matrix().cols().len(), serial.matrix().cols().len());
            assert_eq!(par.matrix().num_entries(), serial.matrix().num_entries());
            // Same multiset of (node, co-kernel, kernel-cube) triples.
            let sig = |e: &Engine| {
                let mut v: Vec<(u32, Cube, Cube)> = e
                    .matrix()
                    .rows()
                    .iter()
                    .flat_map(|r| {
                        r.entries
                            .iter()
                            .map(|&(c, _)| {
                                (
                                    r.node,
                                    r.cokernel.clone(),
                                    e.matrix().cols()[c].cube.clone(),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                    .collect();
                v.sort();
                v
            };
            assert_eq!(sig(&par), sig(&serial), "procs={procs}");
        }
    }

    #[test]
    fn parallel_generation_extraction_reaches_same_quality() {
        let (mut nw, _) = example_1_1();
        let targets: Vec<SignalId> = nw.node_ids().collect();
        let mut engine = Engine::new_parallel(&nw, &targets, ExtractConfig::default(), 3);
        while let (Some(rect), _) = engine.search(None) {
            engine.apply(&mut nw, &rect);
        }
        assert_eq!(nw.literal_count(), 21);
    }

    #[test]
    fn parallel_generation_is_deterministic_across_proc_counts_labels() {
        // Rows generated by processor p carry labels in p's block.
        let (nw, _) = example_1_1();
        let targets: Vec<SignalId> = nw.node_ids().collect();
        let par = Engine::new_parallel(&nw, &targets, ExtractConfig::default(), 2);
        let blocks: std::collections::BTreeSet<u64> = par
            .matrix()
            .rows()
            .iter()
            .map(|r| r.label / pf_kcmatrix::LabelGen::DEFAULT_OFFSET)
            .collect();
        assert!(blocks.len() >= 2, "both generator blocks used: {blocks:?}");
    }

    use pf_network::Network;
    use pf_sop::{Cube, Sop};
}
