//! Profiles calibrated to the paper's benchmark circuits.
//!
//! Initial literal counts follow the paper's tables: misex3 1661, dalu
//! 3588, des 7412, ex1010 13977, seq 17938, spla 24087. Shape parameters
//! differ per circuit to mimic each benchmark's character — `seq`
//! reduces strongly under kernel extraction in the paper (0.52×), the
//! PLA-style circuits (`spla`, `ex1010`, `misex3`) are wide, two-level
//! and noisier (0.73–0.85×), and `dalu`/`des` sit in between with real
//! multi-level structure.

use crate::generator::CircuitProfile;

fn base(name: &str, seed: u64) -> CircuitProfile {
    CircuitProfile {
        name: name.to_string(),
        target_lc: 1000,
        num_inputs: 48,
        num_kernels: 12,
        kernel_cubes: (2, 3),
        kernel_cube_lits: (1, 2),
        plants_per_node: (1, 2),
        noise_cubes: (1, 3),
        noise_cube_lits: (2, 4),
        node_ref_prob: 0.2,
        seed,
    }
}

/// The six benchmark analogues in the paper's quality tables.
pub fn paper_profiles() -> Vec<CircuitProfile> {
    vec![
        CircuitProfile {
            target_lc: 1661,
            num_inputs: 14,
            num_kernels: 8,
            noise_cubes: (2, 4),
            node_ref_prob: 0.0, // PLA: two-level
            ..base("misex3", 0x1501)
        },
        CircuitProfile {
            target_lc: 3588,
            num_inputs: 75,
            num_kernels: 16,
            plants_per_node: (1, 2),
            noise_cubes: (1, 3),
            node_ref_prob: 0.25,
            ..base("dalu", 0xDA1D)
        },
        CircuitProfile {
            target_lc: 7412,
            num_inputs: 256,
            num_kernels: 24,
            plants_per_node: (1, 2),
            noise_cubes: (2, 4),
            node_ref_prob: 0.15,
            ..base("des", 0xDE5)
        },
        CircuitProfile {
            target_lc: 13977,
            num_inputs: 10,
            num_kernels: 10,
            kernel_cube_lits: (1, 2),
            plants_per_node: (1, 1),
            noise_cubes: (3, 6),
            noise_cube_lits: (3, 6),
            node_ref_prob: 0.0, // PLA
            ..base("ex1010", 0xE1010)
        },
        CircuitProfile {
            target_lc: 17938,
            num_inputs: 41,
            num_kernels: 20,
            plants_per_node: (2, 4),
            noise_cubes: (0, 1),
            node_ref_prob: 0.3, // deep multi-level, heavy sharing
            ..base("seq", 0x5E0)
        },
        CircuitProfile {
            target_lc: 24087,
            num_inputs: 16,
            num_kernels: 14,
            plants_per_node: (1, 2),
            noise_cubes: (2, 5),
            noise_cube_lits: (3, 6),
            node_ref_prob: 0.0, // PLA
            ..base("spla", 0x59AA)
        },
    ]
}

/// The five circuits of Table 1, in the paper's row order.
pub fn table1_profiles() -> Vec<CircuitProfile> {
    let order = ["dalu", "seq", "des", "spla", "ex1010"];
    order
        .iter()
        .map(|n| profile_by_name(n).expect("known circuit"))
        .collect()
}

/// Looks a paper profile up by its circuit name.
pub fn profile_by_name(name: &str) -> Option<CircuitProfile> {
    paper_profiles().into_iter().find(|p| p.name == name)
}

/// Scales a profile's size by `factor` (factor > 0): target literal
/// count grows or shrinks proportionally, the kernel pool and input
/// count follow with √factor (keeping node shape roughly constant),
/// shape parameters stay. Factors above 1 enlarge the circuit — the
/// partition bench uses scales 2–4 so extraction, not recovery, owns
/// the wall clock. Used by tests and by the bench harness's
/// `PARAFACTOR_SCALE` knob.
pub fn scale_profile(p: &CircuitProfile, factor: f64) -> CircuitProfile {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "factor must be positive and finite"
    );
    CircuitProfile {
        target_lc: ((p.target_lc as f64 * factor) as usize).max(120),
        num_kernels: ((p.num_kernels as f64 * factor.sqrt()) as usize).max(3),
        num_inputs: ((p.num_inputs as f64 * factor.sqrt()) as usize).max(8),
        ..p.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn profiles_match_paper_initial_lc() {
        for p in paper_profiles() {
            let nw = generate(&scale_profile(&p, 0.1));
            assert!(nw.literal_count() > 0, "{}", p.name);
        }
        // Exact LC targets recorded for the full-size profiles.
        let lcs: Vec<(String, usize)> = paper_profiles()
            .into_iter()
            .map(|p| (p.name, p.target_lc))
            .collect();
        assert!(lcs.contains(&("dalu".to_string(), 3588)));
        assert!(lcs.contains(&("spla".to_string(), 24087)));
        assert!(lcs.contains(&("ex1010".to_string(), 13977)));
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_by_name("seq").is_some());
        assert!(profile_by_name("nonesuch").is_none());
    }

    #[test]
    fn table1_order_matches_paper() {
        let names: Vec<String> = table1_profiles().into_iter().map(|p| p.name).collect();
        assert_eq!(names, ["dalu", "seq", "des", "spla", "ex1010"]);
    }

    #[test]
    fn scaling_shrinks_but_keeps_floor() {
        let p = profile_by_name("spla").unwrap();
        let s = scale_profile(&p, 0.05);
        assert!(s.target_lc < p.target_lc);
        assert!(s.target_lc >= 120);
        assert!(s.num_kernels >= 3);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_scale_rejected() {
        let p = profile_by_name("dalu").unwrap();
        let _ = scale_profile(&p, 0.0);
    }

    #[test]
    fn scaling_above_one_grows_the_circuit() {
        let p = profile_by_name("misex3").unwrap();
        let s = scale_profile(&p, 4.0);
        assert_eq!(s.target_lc, p.target_lc * 4);
        assert_eq!(s.num_kernels, p.num_kernels * 2);
        assert_eq!(s.num_inputs, p.num_inputs * 2);
        // The generator must actually honour the larger target.
        let nw = generate(&scale_profile(&scale_profile(&p, 0.1), 2.0));
        let small = generate(&scale_profile(&p, 0.1));
        assert!(nw.literal_count() > small.literal_count());
    }

    #[test]
    fn generated_profiles_are_reducible() {
        // Every paper analogue must expose planted sharing to the
        // extractor (checked at small scale to keep tests fast).
        for p in paper_profiles() {
            let sp = scale_profile(&p, 0.08);
            let nw = generate(&sp);
            let mut opt = nw.clone();
            let report = pf_core::extract_kernels(&mut opt, &[], &Default::default());
            assert!(
                report.quality_ratio() < 0.97,
                "{}: ratio {}",
                p.name,
                report.quality_ratio()
            );
        }
    }
}
