//! The seeded circuit generator.
//!
//! A circuit is built in layers. First a pool of *planted kernels* is
//! drawn — small cube-free expressions over the primary inputs (e.g.
//! `ab + cd + e`). Node functions are then assembled from:
//!
//! * **planted products** `c · k_j`: a random co-kernel cube times a
//!   planted kernel, expanded into SOP form (these are what kernel
//!   extraction finds and shares across nodes), and
//! * **noise cubes**: random products that keep the matrix sparse and
//!   the kernels non-trivial to isolate.
//!
//! Later nodes may reference earlier nodes (positive phase), giving the
//! fanin/fanout edges the min-cut partitioner works on.

use pf_network::Network;
use pf_sop::{Cube, Lit, Sop, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Shape parameters of a generated circuit.
#[derive(Clone, Debug)]
pub struct CircuitProfile {
    /// Human-readable name (MCNC analogue, e.g. "dalu").
    pub name: String,
    /// Stop adding nodes when the literal count reaches this.
    pub target_lc: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of planted shared kernels.
    pub num_kernels: usize,
    /// Cubes per planted kernel, inclusive range.
    pub kernel_cubes: (usize, usize),
    /// Literals per kernel cube, inclusive range.
    pub kernel_cube_lits: (usize, usize),
    /// Planted products per node, inclusive range.
    pub plants_per_node: (usize, usize),
    /// Noise cubes per node, inclusive range.
    pub noise_cubes: (usize, usize),
    /// Literals per noise cube, inclusive range.
    pub noise_cube_lits: (usize, usize),
    /// Probability that a cube literal references an earlier node
    /// instead of a primary input.
    pub node_ref_prob: f64,
    /// RNG seed (the generator is fully deterministic given the profile).
    pub seed: u64,
}

impl CircuitProfile {
    /// A small default useful in tests.
    pub fn small(name: &str, seed: u64) -> Self {
        CircuitProfile {
            name: name.to_string(),
            target_lc: 300,
            num_inputs: 24,
            num_kernels: 6,
            kernel_cubes: (2, 3),
            kernel_cube_lits: (1, 2),
            plants_per_node: (1, 2),
            noise_cubes: (1, 3),
            noise_cube_lits: (2, 3),
            node_ref_prob: 0.15,
            seed,
        }
    }
}

fn rand_range(rng: &mut StdRng, range: (usize, usize)) -> usize {
    if range.0 >= range.1 {
        range.0
    } else {
        rng.gen_range(range.0..=range.1)
    }
}

/// Draws a cube over the given variable pool, avoiding the variables in
/// `exclude`.
fn rand_cube(rng: &mut StdRng, pool: &[u32], lits: usize, exclude: &[u32]) -> Cube {
    let mut vars: Vec<u32> = pool
        .iter()
        .copied()
        .filter(|v| !exclude.contains(v))
        .collect();
    vars.shuffle(rng);
    vars.truncate(lits.max(1));
    Cube::from_lits(vars.into_iter().map(|v| {
        // Mostly positive phase; a sprinkle of negations exercises the
        // phase handling without breaking algebraic sharing.
        if rng.gen_bool(0.12) {
            Lit::new(Var::new(v), true)
        } else {
            Lit::pos(v)
        }
    }))
}

/// Generates the network for a profile. Deterministic.
pub fn generate(profile: &CircuitProfile) -> Network {
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut nw = Network::new();

    let inputs: Vec<u32> = (0..profile.num_inputs)
        .map(|i| nw.add_input(format!("i{i}")).expect("unique input name"))
        .collect();

    // Plant the shared kernels: cube-free sums over disjoint-ish input
    // subsets (positive phase only so they stay algebraically visible).
    let mut kernels: Vec<Sop> = Vec::with_capacity(profile.num_kernels);
    for _ in 0..profile.num_kernels {
        let n_cubes = rand_range(&mut rng, profile.kernel_cubes).max(2);
        let mut cubes = Vec::with_capacity(n_cubes);
        for _ in 0..n_cubes {
            let lits = rand_range(&mut rng, profile.kernel_cube_lits).max(1);
            let mut vars: Vec<u32> = inputs.clone();
            vars.shuffle(&mut rng);
            vars.truncate(lits);
            cubes.push(Cube::from_lits(vars.into_iter().map(Lit::pos)));
        }
        let k = Sop::from_cubes(cubes);
        if k.num_cubes() >= 2 && k.largest_common_cube().is_one() {
            kernels.push(k);
        }
    }
    if kernels.is_empty() {
        // Degenerate profile: fall back to one two-literal kernel.
        kernels.push(Sop::from_cubes([
            Cube::single(Lit::pos(inputs[0])),
            Cube::single(Lit::pos(inputs[1 % inputs.len()])),
        ]));
    }

    let mut node_pool: Vec<u32> = Vec::new();
    let mut node_idx = 0usize;
    while nw.literal_count() < profile.target_lc {
        // Variable pool for this node: inputs, plus earlier nodes with
        // some probability (never enough to cycle — only earlier ids).
        let mut cubes: Vec<Cube> = Vec::new();

        let n_plants = rand_range(&mut rng, profile.plants_per_node);
        for _ in 0..n_plants {
            let k = kernels[rng.gen_range(0..kernels.len())].clone();
            let k_support: Vec<u32> = k.support_lits().iter().map(|l| l.var().index()).collect();
            // Co-kernel: 1–2 literals, disjoint from the kernel support.
            let ck_lits = rng.gen_range(1..=2usize);
            let pool: Vec<u32> = if !node_pool.is_empty() && rng.gen_bool(profile.node_ref_prob) {
                node_pool.clone()
            } else {
                inputs.clone()
            };
            let cokernel = rand_cube(&mut rng, &pool, ck_lits, &k_support);
            for kc in k.iter() {
                if let Some(p) = cokernel.product(kc) {
                    cubes.push(p);
                }
            }
        }

        let n_noise = rand_range(&mut rng, profile.noise_cubes);
        for _ in 0..n_noise {
            let lits = rand_range(&mut rng, profile.noise_cube_lits);
            let pool: Vec<u32> = if !node_pool.is_empty() && rng.gen_bool(profile.node_ref_prob) {
                let mut p = inputs.clone();
                p.extend_from_slice(&node_pool);
                p
            } else {
                inputs.clone()
            };
            cubes.push(rand_cube(&mut rng, &pool, lits, &[]));
        }

        if cubes.is_empty() {
            continue;
        }
        let func = Sop::from_cubes(cubes);
        if func.num_cubes() == 0 {
            continue;
        }
        let id = nw
            .add_node(format!("n{node_idx}"), func)
            .expect("unique node name");
        node_idx += 1;
        node_pool.push(id);
    }

    // All sink nodes (no fanouts) become primary outputs, plus a few
    // random internal taps so elimination cannot erase whole cones.
    let fo = nw.fanout_map();
    let node_ids: Vec<u32> = nw.node_ids().collect();
    for &n in &node_ids {
        if fo[n as usize].is_empty() {
            nw.mark_output(n).expect("valid node");
        }
    }
    nw.validate().expect("generated network is a DAG");
    nw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = CircuitProfile::small("t", 7);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.literal_count(), b.literal_count());
        assert_eq!(a.num_signals(), b.num_signals());
        let fa: Vec<_> = a.node_ids().map(|n| a.func(n).clone()).collect();
        let fb: Vec<_> = b.node_ids().map(|n| b.func(n).clone()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CircuitProfile::small("t", 1));
        let b = generate(&CircuitProfile::small("t", 2));
        let fa: Vec<_> = a.node_ids().map(|n| a.func(n).clone()).collect();
        let fb: Vec<_> = b.node_ids().map(|n| b.func(n).clone()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn hits_target_literal_count() {
        let p = CircuitProfile::small("t", 3);
        let nw = generate(&p);
        assert!(nw.literal_count() >= p.target_lc);
        // Overshoot is bounded by one node's worth of literals.
        assert!(nw.literal_count() < p.target_lc + 200);
    }

    #[test]
    fn network_is_valid_dag_with_outputs() {
        let nw = generate(&CircuitProfile::small("t", 11));
        assert!(nw.validate().is_ok());
        assert!(!nw.outputs().is_empty());
    }

    #[test]
    fn planted_kernels_are_extractable() {
        // The whole point: sequential extraction must find real savings.
        let nw = generate(&CircuitProfile::small("t", 5));
        let mut opt = nw.clone();
        let report = pf_core::extract_kernels(&mut opt, &[], &Default::default());
        assert!(
            report.quality_ratio() < 0.9,
            "expected ≥10% reduction, got ratio {}",
            report.quality_ratio()
        );
        assert!(
            pf_network::equivalent_random(&nw, &opt, &Default::default()).unwrap(),
            "extraction must preserve function"
        );
    }

    #[test]
    fn node_references_create_partitionable_graph() {
        let p = CircuitProfile {
            node_ref_prob: 0.5,
            ..CircuitProfile::small("t", 9)
        };
        let nw = generate(&p);
        let g = pf_partition::CircuitGraph::from_network(&nw);
        let edges: usize = (0..g.len()).map(|v| g.neighbors(v).len()).sum();
        assert!(edges > 0, "expected node-to-node edges");
    }
}
