#![warn(missing_docs)]

//! # pf-workloads — synthetic benchmark circuits
//!
//! The paper evaluates on MCNC benchmark circuits (misex3, dalu, des,
//! ex1010, seq, spla), which cannot be redistributed here. This crate
//! generates **seeded synthetic substitutes**: multi-level SOP networks
//! with *planted shared kernels*, sized to the paper's initial literal
//! counts. The plant guarantees the property the experiments depend on —
//! common algebraic divisors shared across many nodes (and across
//! partition boundaries), so that
//!
//! * sequential extraction achieves paper-like LC reductions (~26-31%),
//! * partitioning hides some cross-partition rectangles (Algorithm I's
//!   quality loss), and
//! * the L-shape's overlap recovers most of them (Algorithm L's story).
//!
//! Everything is deterministic for a fixed profile (name, sizes, seed).

pub mod generator;
pub mod handcrafted;
pub mod profiles;

pub use generator::{generate, CircuitProfile};
pub use handcrafted::{alu4, carry_chain, ripple_adder};
pub use profiles::{paper_profiles, profile_by_name, scale_profile, table1_profiles};
