//! Hand-written real circuits, as non-synthetic fixtures.
//!
//! The generator plants structure; these circuits have the structure
//! real datapath logic has — useful as a sanity check that the
//! factorization engine finds real sharing (carry chains are classic
//! kernel-extraction material: `c_{i+1} = a·b + a·c_i + b·c_i` shares
//! `a+b` across stages).

use pf_network::Network;
use pf_sop::{Cube, Lit, Sop};

fn and2(a: u32, b: u32) -> Cube {
    Cube::from_lits([Lit::pos(a), Lit::pos(b)])
}

/// XOR as a two-cube SOP: `a·b̄ + ā·b`.
fn xor_sop(a: u32, b: u32) -> Sop {
    Sop::from_cubes([
        Cube::from_lits([Lit::pos(a), Lit::neg(b)]),
        Cube::from_lits([Lit::neg(a), Lit::pos(b)]),
    ])
}

/// A `width`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`;
/// outputs `s0..` and `cout`. Sum bits are built via XOR nodes, carries
/// as two-level majority SOPs — the flat carry logic is exactly what
/// kernel extraction re-factors into the shared `a+b` chains.
pub fn ripple_adder(width: usize) -> Network {
    assert!(width >= 1);
    let mut nw = Network::new();
    let a: Vec<u32> = (0..width)
        .map(|i| nw.add_input(format!("a{i}")).unwrap())
        .collect();
    let b: Vec<u32> = (0..width)
        .map(|i| nw.add_input(format!("b{i}")).unwrap())
        .collect();
    let cin = nw.add_input("cin").unwrap();

    let mut carry = cin;
    for i in 0..width {
        // x_i = a_i ⊕ b_i
        let x = nw.add_node(format!("x{i}"), xor_sop(a[i], b[i])).unwrap();
        // s_i = x_i ⊕ c_i
        let s = nw.add_node(format!("s{i}"), xor_sop(x, carry)).unwrap();
        nw.mark_output(s).unwrap();
        // c_{i+1} = a_i·b_i + a_i·c_i + b_i·c_i  (majority, flat SOP)
        let c = nw
            .add_node(
                format!("c{}", i + 1),
                Sop::from_cubes([and2(a[i], b[i]), and2(a[i], carry), and2(b[i], carry)]),
            )
            .unwrap();
        carry = c;
    }
    nw.mark_output(carry).unwrap();
    nw.validate().expect("adder is a DAG");
    nw
}

/// A carry chain only (no sum XORs): inputs `a0..`, `b0..`, `cin`,
/// outputs every carry `c1..cw`. All-positive logic, so the chain can be
/// *collapsed* (eliminate) into flat carry-lookahead SOPs and then
/// re-factored — the classic SIS collapse/refactor demonstration.
pub fn carry_chain(width: usize) -> Network {
    assert!(width >= 1);
    let mut nw = Network::new();
    let a: Vec<u32> = (0..width)
        .map(|i| nw.add_input(format!("a{i}")).unwrap())
        .collect();
    let b: Vec<u32> = (0..width)
        .map(|i| nw.add_input(format!("b{i}")).unwrap())
        .collect();
    let cin = nw.add_input("cin").unwrap();
    let mut carry = cin;
    for i in 0..width {
        let c = nw
            .add_node(
                format!("c{}", i + 1),
                Sop::from_cubes([and2(a[i], b[i]), and2(a[i], carry), and2(b[i], carry)]),
            )
            .unwrap();
        nw.mark_output(c).unwrap();
        carry = c;
    }
    nw.validate().expect("carry chain is a DAG");
    nw
}

/// A small 4-bit ALU slice: per bit, AND / OR / XOR / ADD of the two
/// operands, selected by `op0`/`op1` (one-hot-ish select built from the
/// complemented literals). Flat SOPs throughout — lots of shared
/// select·operand products for cube extraction.
pub fn alu4() -> Network {
    let mut nw = Network::new();
    let a: Vec<u32> = (0..4)
        .map(|i| nw.add_input(format!("a{i}")).unwrap())
        .collect();
    let b: Vec<u32> = (0..4)
        .map(|i| nw.add_input(format!("b{i}")).unwrap())
        .collect();
    let op0 = nw.add_input("op0").unwrap();
    let op1 = nw.add_input("op1").unwrap();

    // Adder carries (no cin).
    let mut carries: Vec<u32> = Vec::new();
    let mut carry: Option<u32> = None;
    for i in 0..4 {
        let mut cubes = vec![and2(a[i], b[i])];
        if let Some(c) = carry {
            cubes.push(and2(a[i], c));
            cubes.push(and2(b[i], c));
        }
        let c = nw
            .add_node(format!("carry{}", i + 1), Sop::from_cubes(cubes))
            .unwrap();
        carries.push(c);
        carry = Some(c);
    }

    for i in 0..4 {
        // sum_i = a ⊕ b ⊕ c_in(i)
        let x = nw.add_node(format!("x{i}"), xor_sop(a[i], b[i])).unwrap();
        let sum = if i == 0 {
            x
        } else {
            nw.add_node(format!("sum{i}"), xor_sop(x, carries[i - 1]))
                .unwrap()
        };
        // f_i = op̄1·op̄0·(a·b)  +  op̄1·op0·(a + b)  +  op1·op̄0·(a⊕b)
        //     + op1·op0·sum_i  — flattened into one SOP.
        let f = Sop::from_cubes(
            [
                // AND
                vec![Lit::neg(op1), Lit::neg(op0), Lit::pos(a[i]), Lit::pos(b[i])],
                // OR
                vec![Lit::neg(op1), Lit::pos(op0), Lit::pos(a[i])],
                vec![Lit::neg(op1), Lit::pos(op0), Lit::pos(b[i])],
                // XOR
                vec![Lit::pos(op1), Lit::neg(op0), Lit::pos(x)],
                // ADD
                vec![Lit::pos(op1), Lit::pos(op0), Lit::pos(sum)],
            ]
            .into_iter()
            .map(Cube::from_lits),
        );
        let out = nw.add_node(format!("f{i}"), f).unwrap();
        nw.mark_output(out).unwrap();
    }
    nw.validate().expect("ALU is a DAG");
    nw
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_network::sim::{equivalent_random, simulate, EquivConfig};

    #[test]
    fn adder_adds() {
        let nw = ripple_adder(4);
        // Pack all 512 assignments (4+4+1 inputs) bit-parallel in 8 words.
        let n_in = nw.input_ids().count();
        assert_eq!(n_in, 9);
        for trial in 0..512u64 {
            let a_val = trial & 0xF;
            let b_val = (trial >> 4) & 0xF;
            let cin = (trial >> 8) & 1;
            let mut words = vec![0u64; n_in];
            for i in 0..4 {
                words[i] = if (a_val >> i) & 1 == 1 { !0 } else { 0 };
                words[4 + i] = if (b_val >> i) & 1 == 1 { !0 } else { 0 };
            }
            words[8] = if cin == 1 { !0 } else { 0 };
            let values = simulate(&nw, &words).unwrap();
            let mut sum = 0u64;
            for (i, &o) in nw.outputs().iter().enumerate() {
                if values[o as usize] & 1 == 1 {
                    sum |= 1 << i; // s0..s3 then cout
                }
            }
            assert_eq!(sum, a_val + b_val + cin, "a={a_val} b={b_val} cin={cin}");
        }
    }

    #[test]
    fn extraction_on_adder_preserves_addition() {
        let nw = ripple_adder(8);
        let mut opt = nw.clone();
        let r = pf_core::extract_kernels(&mut opt, &[], &Default::default());
        assert!(r.lc_after <= r.lc_before);
        assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn alu_has_extractable_sharing() {
        let nw = alu4();
        let mut opt = nw.clone();
        let r = pf_core::extract_kernels(&mut opt, &[], &Default::default());
        assert!(
            r.lc_after < r.lc_before,
            "select/operand sharing must be found: {} -> {}",
            r.lc_before,
            r.lc_after
        );
        assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn carry_chain_collapses_and_refactors() {
        use pf_network::transform::{eliminate_node, sweep};
        let nw = carry_chain(5);
        let mut flat = nw.clone();
        // Collapse the whole chain into flat carry-lookahead SOPs.
        for i in (1..5u32).rev() {
            let c = flat.find(&format!("c{i}")).unwrap();
            // c1..c7 feed c_{i+1}; all are outputs too, so eliminate only
            // rewrites the fanouts — the nodes stay as outputs.
            assert!(eliminate_node(&mut flat, c).unwrap(), "c{i}");
        }
        let _ = sweep(&mut flat);
        assert!(
            flat.literal_count() > nw.literal_count(),
            "flattening grows"
        );
        assert!(equivalent_random(&nw, &flat, &EquivConfig::default()).unwrap());
        // Refactoring recovers much of the growth.
        let mut refactored = flat.clone();
        let r = pf_core::extract_kernels(&mut refactored, &[], &Default::default());
        assert!(r.lc_after < r.lc_before);
        assert!(equivalent_random(&nw, &refactored, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn parallel_algorithms_on_real_adder() {
        use pf_core::{lshaped_extract, LShapedConfig};
        let nw = ripple_adder(12);
        let mut opt = nw.clone();
        let r = lshaped_extract(
            &mut opt,
            &LShapedConfig {
                procs: 3,
                ..LShapedConfig::default()
            },
        );
        assert!(r.lc_after <= r.lc_before);
        assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn cube_extraction_on_alu() {
        let nw = alu4();
        let mut opt = nw.clone();
        let r = pf_core::extract_common_cubes(&mut opt, &[], &Default::default());
        // op̄1·op0 and friends are shared cubes.
        assert!(r.extractions >= 1);
        assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }
}
