#![warn(missing_docs)]

//! Offline in-tree shim for the subset of [`parking_lot`] this workspace
//! uses, backed by `std::sync`.
//!
//! The build environment has no network access and no crates.io cache,
//! so the real `parking_lot` cannot be fetched. This shim keeps the
//! call sites source-compatible: `Mutex::lock`/`RwLock::read`/`write`
//! return guards directly (no `LockResult`), matching parking_lot's
//! no-poisoning semantics by unwrapping poisoned std locks — a panic
//! while holding a lock here aborts the pretence of poisoning exactly
//! like parking_lot ignores it.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader–writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with the shim's [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex meanwhile.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter. Returns whether a thread was woken (parking_lot
    /// reports this; std cannot, so this is a best-effort `true`).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters. Returns the number woken (unknowable via std;
    /// reported as 0).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_ignores_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
