#![warn(missing_docs)]

//! Offline in-tree shim for the subset of [`criterion`] this workspace
//! uses: `Criterion::bench_function`, benchmark groups with
//! `bench_with_input` / `sample_size`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment is offline with no crates.io cache, so the real
//! crate cannot be fetched. This shim times each benchmark with plain
//! wall-clock sampling (warmup + median-of-samples) and prints a
//! one-line report — no statistics engine, no HTML, no comparisons. It
//! exists so `cargo bench` and bench compilation under `cargo test`
//! keep working; treat its numbers as indicative only.
//!
//! Passing `--test` to the bench binary (`cargo bench -- --test`)
//! mirrors real criterion's smoke mode: every benchmark still runs, but
//! with the minimum sample count, so CI can verify benches execute
//! without paying for a full measurement.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// True when the bench binary was invoked with `--test` (as `cargo
/// bench -- --test` does in real criterion): run every benchmark as a
/// minimal smoke pass instead of a full measurement.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Clamps a requested sample count, forcing the smoke-mode minimum when
/// `--test` was passed.
fn effective_sample_size(n: usize) -> usize {
    if test_mode() {
        2
    } else {
        n.max(2)
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`: a short warmup, then `sample_size` samples of a
    /// batch each, recording per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch size calibration: aim for ~5ms per sample.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / one.as_nanos()).clamp(1, 10_000) as u32;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let lo = samples[samples.len() / 10];
    let hi = samples[samples.len() - 1 - samples.len() / 10];
    println!("bench {name:<40} median {median:>12.3?}   [{lo:.3?} .. {hi:.3?}]");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: effective_sample_size(30),
        }
    }
}

impl Criterion {
    /// Configures the per-benchmark sample count (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = effective_sample_size(n);
        self
    }

    /// Configures measurement time. Accepted for API compatibility; the
    /// shim's sampling is bounded by sample count, not time.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
        });
        report(name, &mut samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = effective_sample_size(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
        });
        report(&format!("{}/{}", self.name, id), &mut samples);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut samples = Vec::new();
        f(
            &mut Bencher {
                samples: &mut samples,
                sample_size: self.sample_size,
            },
            input,
        );
        report(&format!("{}/{}", self.name, id), &mut samples);
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs >= 3, "payload must run at least once per sample");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &k| b.iter(|| k * 2));
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn sample_size_clamps_to_minimum() {
        // Outside `--test` mode the floor is 2; requests above it pass
        // through unchanged.
        assert_eq!(effective_sample_size(0), 2);
        assert_eq!(effective_sample_size(30), 30);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
