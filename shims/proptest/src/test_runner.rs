//! Runner configuration and per-case outcomes.

/// Subset of proptest's runner configuration: the number of successful
/// cases each property must reach.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Successful cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why one generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
    /// An assertion failed; the test fails (no shrinking in the shim).
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;
