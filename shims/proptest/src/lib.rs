#![warn(missing_docs)]

//! Offline in-tree shim for the subset of [`proptest`] this workspace
//! uses: the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`],
//! [`Strategy`] with `prop_map`, ranges and tuples as strategies,
//! `prop::collection::{vec, btree_set, btree_map}`, [`any`], simple
//! char-class string "regexes", and [`ProptestConfig::with_cases`].
//!
//! The build environment is offline with no crates.io cache, so the real
//! crate cannot be fetched. Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimized;
//! * **fixed deterministic seeding** — each test function derives its
//!   RNG seed from its own name, so failures reproduce across runs;
//! * regex strategies support only `[class]{m,n}` patterns (all this
//!   workspace uses); anything else generates the pattern literally.
//!
//! [`proptest`]: https://docs.rs/proptest

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;
pub mod test_runner;

/// `prop::collection` etc., mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, btree_set, vec};
    }
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test RNG: seed derived from the test name (FNV-1a)
/// so each property explores its own stream but reproduces across runs.
pub fn rng_for_test(name: &str) -> StdRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Runs the body of one [`proptest!`]-generated test: `config.cases`
/// successful cases, with an assume-rejection budget.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    let mut rng = rng_for_test(name);
    let mut done: u32 = 0;
    let mut rejected: u32 = 0;
    let reject_budget = config.cases.saturating_mul(16).max(4096);
    while done < config.cases {
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "proptest shim: {name} rejected {rejected} cases \
                         (completed {done}/{}); prop_assume too strict",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest shim: {name} failed after {done} passing cases: {msg}")
            }
        }
    }
}

/// The macro that turns property functions into `#[test]`s.
///
/// Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// doc
///     #[test]
///     fn prop_name(x in strategy_expr, y in other_expr) { ...body... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    // NB: `#[test]` is captured by the attribute repetition (matching a
    // literal `#[test]` after `$(#[$meta:meta])*` is ambiguous to the
    // macro parser) and re-emitted with the other attributes.
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion with value dumps.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Inequality assertion with value dumps.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {}: {}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)+),
                        l
                    )));
                }
            }
        }
    };
}

/// Discards the current case (retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 5usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u8..10, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn btree_set_is_a_set(s in prop::collection::btree_set(0u32..100, 0..=6)) {
            prop_assert!(s.len() <= 6);
            let unique: BTreeSet<u32> = s.iter().copied().collect();
            prop_assert_eq!(unique.len(), s.len());
        }

        #[test]
        fn tuples_and_map(t in (0u32..4, 0u16..3).prop_map(|(a, b)| a as u64 + b as u64)) {
            prop_assert!(t <= 5);
        }

        #[test]
        fn assume_rejects_but_converges(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }

        #[test]
        fn char_class_strings(s in "[ -~\n]{0,40}") {
            prop_assert!(s.len() <= 40);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        let cfg = ProptestConfig::with_cases(8);
        crate::run_cases("always_fails", &cfg, |rng| {
            let x = crate::Strategy::generate(&(0u32..10), rng);
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for_test("t");
        let mut b = crate::rng_for_test("t");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
