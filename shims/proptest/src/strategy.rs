//! The [`Strategy`] trait and the combinators this workspace uses.
//!
//! A strategy is simply a generator: `generate(&self, rng)` produces one
//! value. There is no shrink tree — see the crate docs for the contract.

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A value generator. Implemented by ranges, tuples, collections,
/// char-class string patterns, and the [`prop_map`](Strategy::prop_map)
/// combinator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (up to a bounded
    /// number of attempts — the filter must not be too strict).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1024 attempts: {}", self.whence)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical full-domain strategy for `T`, as in `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy produced by [`any`] for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! impl_arbitrary_uniform {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                #[allow(clippy::redundant_closure_call)]
                ($gen)(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_uniform! {
    bool => |rng: &mut StdRng| rng.gen::<bool>(),
    u8 => |rng: &mut StdRng| rng.gen::<u32>() as u8,
    u16 => |rng: &mut StdRng| rng.gen::<u32>() as u16,
    u32 => |rng: &mut StdRng| rng.gen::<u32>(),
    u64 => |rng: &mut StdRng| rng.gen::<u64>(),
    usize => |rng: &mut StdRng| rng.gen::<u64>() as usize,
    i32 => |rng: &mut StdRng| rng.gen::<u32>() as i32,
    i64 => |rng: &mut StdRng| rng.gen::<u64>() as i64,
}

/// `&str` patterns as string strategies. Only the `[class]{m,n}` shape
/// is interpreted (that is all this workspace uses); other patterns
/// generate themselves literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        match parse_char_class_pattern(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = rng.gen_range(lo..=hi);
                (0..len)
                    .map(|_| chars[rng.gen_range(0..chars.len())])
                    .collect()
            }
            _ => (*self).to_string(),
        }
    }
}

/// Parses `[class]{m,n}` into (allowed chars, m, n). Supports `a-b`
/// ranges and `\n` / `\t` / `\\` escapes inside the class.
fn parse_char_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = counts.0.trim().parse().ok()?;
    let hi: usize = counts.1.trim().parse().ok()?;
    if lo > hi {
        return None;
    }

    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = match class[i] {
            '\\' if i + 1 < class.len() => {
                i += 1;
                match class[i] {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }
            }
            other => other,
        };
        // Range `c-d` (a '-' that is neither first nor last).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let end = class[i + 2];
            for v in (c as u32)..=(end as u32) {
                if let Some(ch) = char::from_u32(v) {
                    chars.push(ch);
                }
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    chars.sort_unstable();
    chars.dedup();
    Some((chars, lo, hi))
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// Size specification: a fixed length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` with a size in `size` (best effort: duplicates are
    /// retried a bounded number of times, so a small element domain may
    /// yield a smaller set).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 16 * target.max(1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` with a size in `size` (same best-effort rule as
    /// [`btree_set`]).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < target && attempts < 16 * target.max(1) {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}
