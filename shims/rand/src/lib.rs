#![warn(missing_docs)]

//! Offline in-tree shim for the subset of [`rand` 0.8] this workspace
//! uses: `StdRng`/`SmallRng` seeded via `seed_from_u64`, `Rng`'s
//! `gen`/`gen_range`/`gen_bool`, and `seq::SliceRandom`'s
//! `shuffle`/`choose`.
//!
//! The build environment is offline with no crates.io cache, so the real
//! crate cannot be fetched. The generator here is **xoshiro256++** with
//! SplitMix64 seed expansion — deterministic for a given seed, but a
//! *different* stream than rand's ChaCha12-based `StdRng`, so any test
//! that hard-codes values derived from seeded generation will drift when
//! switching between this shim and the real crate.
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

use std::ops::{Range, RangeInclusive};

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, as in rand 0.8.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy. Offline shim: derived from
    /// the monotonic clock — fine for shuffles, not for cryptography.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(t)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the shim's only engine, used for both `StdRng` and
/// `SmallRng`.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::*;

    /// The shim's standard generator (xoshiro256++, NOT rand's ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }

    /// The shim's small generator — same engine as [`StdRng`].
    #[derive(Clone, Debug)]
    pub struct SmallRng(pub(crate) Xoshiro256PlusPlus);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256PlusPlus::seed_from_u64(seed))
        }
    }
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Debiased bounded sampling in [0, n) via Lemire-style rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// The user-facing sampling methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Samples a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// `shuffle` / `choose` on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to id");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(17);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
