#![warn(missing_docs)]

//! # parafactor — parallel algebraic factorization for logic synthesis
//!
//! Facade crate re-exporting the public API of the workspace, a
//! from-scratch Rust reproduction of Roy & Banerjee, *A Comparison of
//! Parallel Approaches for Algebraic Factorization in Logic Synthesis*
//! (IPPS 1997).
//!
//! The three parallel kernel-extraction algorithms of the paper live in
//! [`core`]: the replicated divide-and-conquer search (§3), the
//! independent-partition extraction (§4) and the L-shaped partitioning
//! with interactions (§5). Everything they stand on — cube/SOP algebra,
//! the Boolean network, the co-kernel cube matrix with rectangle
//! covering, and the min-cut circuit partitioner — is implemented in the
//! sibling crates re-exported below.

pub mod benchjson;

pub use pf_cache as cache;
pub use pf_core as core;
pub use pf_kcmatrix as kcmatrix;
pub use pf_network as network;
pub use pf_partition as partition;
pub use pf_serve as serve;
pub use pf_sop as sop;
pub use pf_workloads as workloads;
