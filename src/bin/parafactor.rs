//! `parafactor` — command-line front end, in the spirit of `sis`'s
//! batch mode.
//!
//! ```text
//! parafactor [OPTIONS] <INPUT>
//! parafactor serve  [--addr A] [--workers N] [--queue N] [--max-procs N]
//!                   [--max-conns N] [--idle-timeout-ms N]
//!                   [--cache-entries N] [--cache-ttl-secs N]
//!                   [--fault-plan SPEC] [--fault-seed N] [--worker]
//! parafactor submit [--addr A] [-a ALG] [-p N] [--par-threads N]
//!                   [--batch-rects K] [--tile-width W] [--deadline-ms N]
//!                   [--retries N] [--delta-from BASE] <WORKLOAD>
//! parafactor dist   [--workers N | --peers A,B,…] [--parts N]
//!                   [--no-recovery] [--recovery-shards N]
//!                   [--lease-timeout-ms N]
//!                   [--fault-plan SPEC] [--fault-seed N] <WORKLOAD>
//! parafactor bench-json [--quick] [--out FILE]
//!                   [--assert-pooled-overhead PCT]
//!                   [--assert-pass-reduction PCT]
//!                   [--assert-tile-speedup PCT]
//!                   [--assert-cache-identical]
//!                   [--partition] [--scales F,F,…]
//!                   [--assert-gap-closed PCT]
//!                   [--assert-recovery-share PCT]
//! parafactor profile [-a ALG] [-p N] [--par-threads N] [--batch-rects K]
//!                   [--tile-width W] [--seed N] [-o FILE] <INPUT>
//!
//! INPUT                 circuit file (.blif, or the native text format),
//!                       or gen:<profile>[@scale] for a synthetic circuit
//!                       (profiles: misex3 dalu des seq spla ex1010)
//! -a, --algorithm ALG   seq | replicated | independent | lshaped |
//!                       lshaped-seq | lshaped-cx | iterative | script
//!                       [default: seq]
//! -p, --procs N         processors / partitions            [default: 4]
//!     --par-threads N   intra-matrix search threads per worker; 0 keeps
//!                       the classic sequential search      [default: 0]
//!     --batch-rects K   rectangles collected per search pass; conflict-
//!                       free subsets are applied in one batch. 1 keeps
//!                       the classic one-per-pass engine    [default: 1]
//!     --tile-width W    u64 words per tile in the cache-blocked search
//!                       kernel (byte-identical results); 0 keeps the
//!                       scalar word loop                   [default: 0]
//! -o, --output FILE     write the optimized circuit (format by extension:
//!                       .blif or anything else = native text)
//!     --objective OBJ   area | timing | power               [default: area]
//!     --cx              run common-cube extraction after kernels
//!     --seed N          workload generator seed override
//!     --stats           print the full statistics block
//!     --verify          check functional equivalence after optimizing
//! -h, --help            this text
//!
//! serve runs the resident factorization service (JSON lines over TCP,
//! default 127.0.0.1:7878; protocol in docs/SERVICE.md). --max-conns caps
//! concurrent connections, --idle-timeout-ms closes silent connections
//! (0 disables), and --fault-plan injects deterministic faults for chaos
//! testing (grammar: SITE=KIND[@PROB][#MAX][;...], KIND = panic | cancel |
//! latency:MS | drop | dup | stall:MS — see docs/SERVICE.md). --worker
//! additionally answers the distributed driver's `sub` op (leased
//! sub-jobs; raises the line cap to fit network snapshots). submit sends
//! one job to a running service and prints the JSON response;
//! queue-full and overloaded rejections, and transient connect/read
//! errors, are retried up to --retries times with exponential backoff.
//! For both commands procs must be >= 1 and is capped at the host's
//! available parallelism; --par-threads is likewise capped (0 stays 0).
//! --cache-entries sizes the service's content-addressed result cache
//! (0 disables it; default 64) and --cache-ttl-secs expires entries
//! (0 = never, the default); an exact resubmission replays the memoized
//! result byte-for-byte. submit --delta-from BASE marks the job as a
//! delta against the fingerprint of a previously completed seq job
//! (e.g. seq/gen:misex3@0.25): the service re-extracts only the cones
//! whose functions changed and splices the rest from the cached base
//! (details in docs/SERVICE.md "Caching & delta-submit"). bench-json
//! measures the rectangle-search engines (spawn-per-pass and pooled) and
//! the four drivers end to end and writes BENCH_rect.json (--quick
//! shrinks scales/reps for CI; --assert-pooled-overhead PCT exits
//! non-zero when the pooled one-thread median exceeds the sequential
//! engine's by more than PCT percent, skipped with a warning on a
//! single-core host; --assert-pass-reduction PCT exits non-zero when
//! batching at K=16 cuts the seq driver's pass count by less than PCT
//! percent; --assert-cache-identical exits non-zero unless the warm
//! cache-served network is byte-identical to
//! the cold run's). bench-json --partition instead measures distributed
//! partition extraction and writes BENCH_partition.json: per workload
//! scale (--scales, default 0.5,2,4) the sequential oracle's literal
//! count against the recovery-off (Algorithm-I quality) and recovery-on
//! distributed runs at 1/2/4 workers; --assert-gap-closed PCT exits
//! non-zero when boundary recovery closes less than PCT percent of the
//! partition literal gap (scales below 2), and --assert-recovery-share
//! PCT exits non-zero when the recovery stage (frontier + resub +
//! sweep) takes more than PCT percent of the recovered wall at any
//! scale >= 2.
//! dist runs fault-tolerant distributed partition extraction from this
//! process as the coordinator: the workload is partitioned, each part is
//! dispatched as a leased sub-job to in-process workers (--workers) or
//! to remote --peers running `serve --worker`, expired leases fail over
//! with jittered backoff, and a sharded boundary-recovery stage
//! re-extracts the rectangles the partition cut and resubstitutes the
//! recovered divisors (skipped by --no-recovery; --recovery-shards caps
//! the recovery units, 0 = one per worker and 1 = the legacy serial
//! pass; if a recovery shard exhausts its retries the result degrades
//! to the quality already merged and the report says so). Prints the
//! same JSON the
//! `dist` op answers, including the lease ledger (docs/SERVICE.md
//! "Distributed extraction").
//! profile runs one extraction with span tracing armed and writes the
//! timeline as Chrome Trace Event Format JSON — load it in
//! chrome://tracing or Perfetto — to stdout or -o FILE (span vocabulary
//! in docs/OBSERVABILITY.md; a run summary goes to stderr).
//! ```

use parafactor::core::script::{run_script, ScriptConfig};
use parafactor::core::FaultPlan;
use parafactor::core::{
    extract_common_cubes, extract_kernels, independent_extract, iterative_extract, lshaped_extract,
    lshaped_extract_cubes, replicated_extract, CubeExtractConfig, ExtractConfig, IndependentConfig,
    IterativeConfig, LShapedConfig, LShapedCxConfig, Objective, ReplicatedConfig, Trace, Tracer,
};
use parafactor::network::blif::{read_blif, write_blif};
use parafactor::network::io::{read_network, write_network};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::{stats, Network};
use parafactor::serve::{
    default_max_procs, request_lines_with_retry, validate_procs, Json, RetryPolicy, Server,
    ServerConfig, ServiceConfig,
};
use parafactor::workloads::{generate, profile_by_name, scale_profile};
use std::process::ExitCode;

struct Options {
    input: String,
    algorithm: String,
    procs: usize,
    par_threads: usize,
    batch_rects: usize,
    tile_width: usize,
    output: Option<String>,
    objective: String,
    run_cx: bool,
    seed: Option<u64>,
    show_stats: bool,
    verify: bool,
}

fn usage() -> ! {
    // The doc comment above is the single source of truth.
    let text = include_str!("parafactor.rs");
    for line in text.lines().skip(3) {
        let Some(stripped) = line.strip_prefix("//!") else {
            break;
        };
        if stripped.trim() == "```text" || stripped.trim() == "```" {
            continue;
        }
        println!("{}", stripped.strip_prefix(' ').unwrap_or(stripped));
    }
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        algorithm: "seq".into(),
        procs: 4,
        par_threads: 0,
        batch_rects: 1,
        tile_width: 0,
        output: None,
        objective: "area".into(),
        run_cx: false,
        seed: None,
        show_stats: false,
        verify: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut need = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "-a" | "--algorithm" => opts.algorithm = need("--algorithm"),
            "-p" | "--procs" => {
                opts.procs = need("--procs").parse().unwrap_or_else(|_| {
                    eprintln!("error: --procs must be a positive integer");
                    usage()
                })
            }
            "--par-threads" => {
                opts.par_threads = need("--par-threads").parse().unwrap_or_else(|_| {
                    eprintln!("error: --par-threads must be a non-negative integer");
                    usage()
                })
            }
            "--batch-rects" => {
                opts.batch_rects = need("--batch-rects")
                    .parse()
                    .ok()
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("error: --batch-rects must be a positive integer");
                        usage()
                    })
            }
            "--tile-width" => {
                opts.tile_width = need("--tile-width").parse().unwrap_or_else(|_| {
                    eprintln!("error: --tile-width must be a non-negative integer");
                    usage()
                })
            }
            "-o" | "--output" => opts.output = Some(need("--output")),
            "--objective" => opts.objective = need("--objective"),
            "--cx" => opts.run_cx = true,
            "--seed" => {
                opts.seed = Some(need("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed must be an integer");
                    usage()
                }))
            }
            "--stats" => opts.show_stats = true,
            "--verify" => opts.verify = true,
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("error: unknown option {other}");
                usage()
            }
            other => {
                if !opts.input.is_empty() {
                    eprintln!("error: more than one input given");
                    usage()
                }
                opts.input = other.to_string();
            }
        }
    }
    if opts.input.is_empty() {
        eprintln!("error: no input");
        usage()
    }
    opts
}

fn load_circuit(opts: &Options) -> Result<Network, String> {
    if let Some(spec) = opts.input.strip_prefix("gen:") {
        let (name, scale) = match spec.split_once('@') {
            Some((n, s)) => (n, s.parse::<f64>().map_err(|_| format!("bad scale {s:?}"))?),
            None => (spec, 0.25),
        };
        let mut profile = profile_by_name(name)
            .ok_or_else(|| format!("unknown profile {name:?} (try dalu, seq, …)"))?;
        if let Some(seed) = opts.seed {
            profile.seed = seed;
        }
        return Ok(generate(&scale_profile(&profile, scale)));
    }
    let text = std::fs::read_to_string(&opts.input)
        .map_err(|e| format!("cannot read {}: {e}", opts.input))?;
    if opts.input.ends_with(".blif") {
        read_blif(&text).map_err(|e| e.to_string())
    } else {
        read_network(&text).map_err(|e| e.to_string())
    }
}

/// `parafactor serve`: bind the TCP front end and run until a client
/// sends a `shutdown` op.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServiceConfig::default();
    let mut server_cfg = ServerConfig::default();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed = 0x5eed_u64;
    let mut i = 0;
    let bad = |msg: String| -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::FAILURE
    };
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--addr" => match value(i) {
                Some(v) => addr = v.clone(),
                None => return bad("--addr needs a value".into()),
            },
            "--workers" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.workers = n,
                _ => return bad("--workers must be a positive integer".into()),
            },
            "--queue" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => cfg.queue_capacity = n,
                _ => return bad("--queue must be a positive integer".into()),
            },
            "--max-procs" => {
                let parsed = match value(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => n,
                    None => return bad("--max-procs must be an integer".into()),
                };
                match validate_procs(parsed, default_max_procs()) {
                    Ok(n) => cfg.max_procs = n,
                    Err(e) => return bad(format!("--max-procs: {e}")),
                }
            }
            "--max-conns" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => server_cfg.max_connections = n,
                _ => return bad("--max-conns must be a positive integer".into()),
            },
            "--idle-timeout-ms" => match value(i).and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => server_cfg.idle_timeout = None,
                Some(n) => server_cfg.idle_timeout = Some(std::time::Duration::from_millis(n)),
                None => return bad("--idle-timeout-ms must be an integer (0 disables)".into()),
            },
            "--cache-entries" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cfg.cache_entries = n,
                None => return bad("--cache-entries must be an integer (0 disables)".into()),
            },
            "--cache-ttl-secs" => match value(i).and_then(|v| v.parse::<u64>().ok()) {
                Some(0) => cfg.cache_ttl = None,
                Some(n) => cfg.cache_ttl = Some(std::time::Duration::from_secs(n)),
                None => return bad("--cache-ttl-secs must be an integer (0 = never)".into()),
            },
            "--fault-plan" => match value(i) {
                Some(v) => fault_spec = Some(v.clone()),
                None => return bad("--fault-plan needs a value".into()),
            },
            "--fault-seed" => match value(i).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => fault_seed = n,
                None => return bad("--fault-seed must be an integer".into()),
            },
            "--worker" => {
                // Sub requests carry whole network snapshots, so worker
                // mode gets a roomier line cap.
                server_cfg.worker = true;
                server_cfg.max_line_bytes = server_cfg.max_line_bytes.max(8 << 20);
                i += 1;
                continue;
            }
            "-h" | "--help" => usage(),
            other => return bad(format!("unknown serve option {other:?}")),
        }
        i += 2;
    }
    if let Some(spec) = fault_spec {
        match FaultPlan::parse(&spec, fault_seed) {
            Ok(plan) => {
                eprintln!("pf-serve: FAULT INJECTION ACTIVE ({spec})");
                cfg.fault_plan = Some(std::sync::Arc::new(plan));
            }
            Err(e) => return bad(format!("--fault-plan: {e}")),
        }
    }
    let server = match Server::bind_with(addr.as_str(), cfg, server_cfg) {
        Ok(s) => s,
        Err(e) => return bad(format!("cannot bind {addr}: {e}")),
    };
    match server.local_addr() {
        Ok(a) => println!("pf-serve listening on {a}"),
        Err(_) => println!("pf-serve listening on {addr}"),
    }
    server.run();
    println!("pf-serve: shut down");
    ExitCode::SUCCESS
}

/// `parafactor submit`: send one job to a running service, print the
/// JSON response line, and exit 0 iff the job completed.
fn cmd_submit(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut algorithm = "seq".to_string();
    let mut procs = 2usize;
    let mut par_threads = 0usize;
    let mut batch_rects = 1usize;
    let mut tile_width = 0usize;
    let mut deadline_ms: Option<u64> = None;
    let mut retries = 4u32;
    let mut delta_from: Option<String> = None;
    let mut workload: Option<String> = None;
    let bad = |msg: String| -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::FAILURE
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--addr" => match value(i) {
                Some(v) => addr = v.clone(),
                None => return bad("--addr needs a value".into()),
            },
            "-a" | "--algorithm" => match value(i) {
                Some(v) => algorithm = v.clone(),
                None => return bad("--algorithm needs a value".into()),
            },
            "-p" | "--procs" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => procs = n,
                None => return bad("--procs must be an integer".into()),
            },
            "--par-threads" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => par_threads = n,
                None => return bad("--par-threads must be a non-negative integer".into()),
            },
            "--batch-rects" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => batch_rects = n,
                _ => return bad("--batch-rects must be a positive integer".into()),
            },
            "--tile-width" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => tile_width = n,
                None => return bad("--tile-width must be a non-negative integer".into()),
            },
            "--deadline-ms" => match value(i).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => deadline_ms = Some(n),
                None => return bad("--deadline-ms must be an integer".into()),
            },
            "--retries" => match value(i).and_then(|v| v.parse::<u32>().ok()) {
                Some(n) => retries = n,
                None => return bad("--retries must be a non-negative integer".into()),
            },
            "--delta-from" => match value(i) {
                Some(v) => delta_from = Some(v.clone()),
                None => return bad("--delta-from needs a base fingerprint".into()),
            },
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                return bad(format!("unknown submit option {other:?}"))
            }
            other => {
                if workload.is_some() {
                    return bad("more than one workload given".into());
                }
                workload = Some(other.to_string());
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    let Some(workload) = workload else {
        return bad("no workload given (e.g. gen:misex3@0.25)".into());
    };
    // Validate locally for a prompt structured error; the service
    // re-validates (and re-caps against its own host) anyway.
    let procs = match validate_procs(procs, default_max_procs()) {
        Ok(p) => p,
        Err(e) => return bad(format!("--procs: {e}")),
    };
    let mut request = vec![
        ("op".to_string(), Json::str("submit")),
        ("algorithm".to_string(), Json::str(algorithm)),
        ("workload".to_string(), Json::str(workload)),
        ("procs".to_string(), Json::u64(procs as u64)),
        ("par_threads".to_string(), Json::u64(par_threads as u64)),
        ("batch_rects".to_string(), Json::u64(batch_rects as u64)),
        ("tile_width".to_string(), Json::u64(tile_width as u64)),
    ];
    if let Some(ms) = deadline_ms {
        request.push(("deadline_ms".to_string(), Json::u64(ms)));
    }
    if let Some(base) = delta_from {
        request.push(("delta_from".to_string(), Json::str(base)));
    }
    let line = Json::Obj(request).to_string();
    // Retry what saturation looks like from here: `queue_full` and
    // `overloaded` rejections (the service is healthy but momentarily
    // full — queue or accept gate), plus transient connect/read errors
    // (a peer mid-restart), all with the same jittered backoff. Every
    // other rejection is terminal.
    let policy = RetryPolicy {
        max_retries: retries,
        ..RetryPolicy::default()
    };
    let mut attempt = 0u32;
    let response = loop {
        let responses =
            match request_lines_with_retry(addr.as_str(), std::slice::from_ref(&line), &policy) {
                Ok(r) => r,
                Err(e) => return bad(format!("cannot reach service at {addr}: {e}")),
            };
        let Some(response) = responses.into_iter().next() else {
            return bad(format!("service at {addr} closed the connection"));
        };
        let saturated = parafactor::serve::json::parse(&response)
            .ok()
            .and_then(|v| {
                (v.get("status").and_then(Json::as_str) == Some("rejected"))
                    .then(|| v.get("reason").and_then(Json::as_str).map(str::to_string))
                    .flatten()
            })
            .filter(|reason| reason == "queue_full" || reason == "overloaded");
        if let Some(reason) = saturated {
            if attempt < policy.max_retries {
                let backoff = policy.backoff(attempt);
                attempt += 1;
                eprintln!(
                    "{reason}; retry {attempt}/{} in {backoff:.1?}",
                    policy.max_retries
                );
                std::thread::sleep(backoff);
                continue;
            }
        }
        break response;
    };
    println!("{response}");
    let completed = parafactor::serve::json::parse(&response)
        .ok()
        .and_then(|v| v.get("status").map(|s| s.as_str() == Some("completed")))
        .unwrap_or(false);
    if completed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `parafactor dist`: run fault-tolerant distributed partition
/// extraction with this process as the coordinator, over in-process
/// workers or remote worker-mode servers. Prints the same JSON body the
/// service's `dist` op answers.
fn cmd_dist(args: &[String]) -> ExitCode {
    let mut workers = 2usize;
    let mut peers: Vec<String> = Vec::new();
    let mut cfg = parafactor::core::DistConfig::default();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed = 0x5eed_u64;
    let mut workload: Option<String> = None;
    let bad = |msg: String| -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::FAILURE
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--workers" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n <= 64 => workers = n,
                _ => return bad("--workers must be an integer (at most 64)".into()),
            },
            "--peers" => match value(i) {
                Some(v) => peers = v.split(',').map(str::to_string).collect(),
                None => return bad("--peers needs host:port[,host:port…]".into()),
            },
            "--parts" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cfg.parts = n,
                None => return bad("--parts must be an integer (0 = one per worker)".into()),
            },
            "--lease-timeout-ms" => match value(i).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n >= 1 => cfg.lease_timeout = std::time::Duration::from_millis(n),
                _ => return bad("--lease-timeout-ms must be a positive integer".into()),
            },
            "--no-recovery" => {
                cfg.recovery = false;
                i += 1;
                continue;
            }
            "--recovery-shards" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => cfg.recovery_shards = n,
                None => {
                    return bad(
                        "--recovery-shards must be an integer (0 = one per worker, 1 = serial)"
                            .into(),
                    )
                }
            },
            "--fault-plan" => match value(i) {
                Some(v) => fault_spec = Some(v.clone()),
                None => return bad("--fault-plan needs a value".into()),
            },
            "--fault-seed" => match value(i).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => fault_seed = n,
                None => return bad("--fault-seed must be an integer".into()),
            },
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                return bad(format!("unknown dist option {other:?}"))
            }
            other => {
                if workload.is_some() {
                    return bad("more than one workload given".into());
                }
                workload = Some(other.to_string());
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    let Some(workload) = workload else {
        return bad("no workload given (e.g. gen:misex3@0.25)".into());
    };
    let mut nw = match load_circuit(&Options {
        input: workload,
        algorithm: "dist".into(),
        procs: workers.max(1),
        par_threads: 0,
        batch_rects: 1,
        tile_width: 0,
        output: None,
        objective: "area".into(),
        run_cx: false,
        seed: None,
        show_stats: false,
        verify: false,
    }) {
        Ok(nw) => nw,
        Err(e) => return bad(e),
    };
    let plan = match &fault_spec {
        None => None,
        Some(spec) => match FaultPlan::parse(spec, fault_seed) {
            Ok(p) => {
                eprintln!("parafactor dist: FAULT INJECTION ACTIVE ({spec})");
                Some(std::sync::Arc::new(p))
            }
            Err(e) => return bad(format!("--fault-plan: {e}")),
        },
    };
    let (report, stats) = if peers.is_empty() {
        if let Some(p) = &plan {
            cfg.extract.ctl = cfg
                .extract
                .ctl
                .clone()
                .with_faults(std::sync::Arc::clone(p));
        }
        let transport = parafactor::core::LocalTransport::with_faults(
            workers,
            plan,
            std::time::Duration::from_millis(100),
        );
        parafactor::core::distributed_extract(&mut nw, &transport, &cfg)
    } else {
        let mut transport = parafactor::serve::RemoteTransport::new(peers);
        if let Some(spec) = &fault_spec {
            transport = transport.forward_faults(spec.clone(), fault_seed);
        }
        parafactor::core::distributed_extract(&mut nw, &transport, &cfg)
    };
    println!("{}", parafactor::serve::dist_response(&report, &stats));
    if stats.balanced() && !report.cancelled {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `parafactor profile`: run one extraction with tracing armed and emit
/// the merged span timeline as Chrome Trace Event Format JSON, loadable
/// in chrome://tracing or Perfetto.
fn cmd_profile(args: &[String]) -> ExitCode {
    let mut opts = Options {
        input: String::new(),
        algorithm: "seq".into(),
        procs: 4,
        par_threads: 0,
        batch_rects: 1,
        tile_width: 0,
        output: None,
        objective: "area".into(),
        run_cx: false,
        seed: None,
        show_stats: false,
        verify: false,
    };
    let bad = |msg: String| -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::FAILURE
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "-a" | "--algorithm" => match value(i) {
                Some(v) => opts.algorithm = v.clone(),
                None => return bad("--algorithm needs a value".into()),
            },
            "-p" | "--procs" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => opts.procs = n,
                None => return bad("--procs must be an integer".into()),
            },
            "--par-threads" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => opts.par_threads = n,
                None => return bad("--par-threads must be a non-negative integer".into()),
            },
            "--batch-rects" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.batch_rects = n,
                _ => return bad("--batch-rects must be a positive integer".into()),
            },
            "--tile-width" => match value(i).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => opts.tile_width = n,
                None => return bad("--tile-width must be a non-negative integer".into()),
            },
            "-o" | "--output" => match value(i) {
                Some(v) => opts.output = Some(v.clone()),
                None => return bad("--output needs a value".into()),
            },
            "--seed" => match value(i).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => opts.seed = Some(n),
                None => return bad("--seed must be an integer".into()),
            },
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                return bad(format!("unknown profile option {other:?}"))
            }
            other => {
                if !opts.input.is_empty() {
                    return bad("more than one input given".into());
                }
                opts.input = other.to_string();
                i += 1;
                continue;
            }
        }
        i += 2;
    }
    if opts.input.is_empty() {
        return bad("no input given (a .blif file or gen:<profile>[@scale])".into());
    }
    opts.procs = match validate_procs(opts.procs, default_max_procs()) {
        Ok(p) => p,
        Err(e) => return bad(format!("--procs: {e}")),
    };
    opts.par_threads = opts.par_threads.min(default_max_procs());
    let mut work = match load_circuit(&opts) {
        Ok(nw) => nw,
        Err(e) => return bad(e),
    };

    let tracer = Tracer::armed();
    let mut extract_cfg = ExtractConfig {
        trace: tracer.clone(),
        ..ExtractConfig::default()
    };
    extract_cfg.search.par_threads = opts.par_threads;
    extract_cfg.search.topk = opts.batch_rects;
    extract_cfg.search.tile_width = opts.tile_width;
    let report = match opts.algorithm.as_str() {
        "seq" => extract_kernels(&mut work, &[], &extract_cfg),
        "replicated" => replicated_extract(
            &mut work,
            &ReplicatedConfig {
                procs: opts.procs,
                extract: extract_cfg,
                ..ReplicatedConfig::default()
            },
        ),
        "independent" => independent_extract(
            &mut work,
            &IndependentConfig {
                procs: opts.procs,
                extract: extract_cfg,
                ..IndependentConfig::default()
            },
        ),
        "lshaped" | "lshaped-seq" => lshaped_extract(
            &mut work,
            &LShapedConfig {
                procs: opts.procs,
                sequential: opts.algorithm == "lshaped-seq",
                extract: extract_cfg,
                ..LShapedConfig::default()
            },
        ),
        "iterative" => iterative_extract(
            &mut work,
            &IterativeConfig {
                inner: IndependentConfig {
                    procs: opts.procs,
                    extract: extract_cfg,
                    ..IndependentConfig::default()
                },
                ..IterativeConfig::default()
            },
        ),
        other => {
            return bad(format!(
                "profile supports seq | replicated | independent | lshaped | lshaped-seq \
                 | iterative, not {other:?}"
            ))
        }
    };
    let trace = tracer.take();

    // Coverage: for each reported phase, sum that phase's spans per lane
    // and take the best lane (the driver-level one — parallel workers
    // duplicate phase spans, so summing across lanes would double-count;
    // iterative drivers emit several spans per phase on one lane, so a
    // single max would undercount). Cap at the phase's reported time.
    let covered_ns: u64 = report
        .phases
        .iter()
        .map(|p| {
            let mut per_lane = std::collections::HashMap::new();
            for e in trace.events.iter().filter(|e| e.name == p.name) {
                *per_lane.entry(e.lane).or_insert(0u64) += e.dur_ns;
            }
            per_lane
                .into_values()
                .max()
                .unwrap_or(0)
                .min(p.elapsed.as_nanos() as u64)
        })
        .sum();
    let elapsed_ns = report.elapsed.as_nanos() as u64;
    let coverage = if elapsed_ns == 0 {
        100.0
    } else {
        100.0 * covered_ns as f64 / elapsed_ns as f64
    };

    let json = trace_event_json(&trace, &opts, &report).to_string();
    match &opts.output {
        Some(path) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                return bad(format!("cannot write {path}: {e}"));
            }
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "profile: {} on {}: {} events in {} lanes, {} extractions, \
         phase spans cover {coverage:.1}% of {:.3?}",
        opts.algorithm,
        opts.input,
        trace.events.len(),
        trace.lanes.len(),
        report.extractions,
        report.elapsed,
    );
    eprintln!(
        "profile: {} search passes, {:.2} rects/pass{}",
        report.passes,
        report.rects_per_pass(),
        if report.batch_candidates > 0 {
            format!(
                ", batch: {} candidates, {} accepted, {} rejected",
                report.batch_candidates, report.batch_accepted, report.batch_rejected
            )
        } else {
            String::new()
        }
    );
    if trace.dropped > 0 {
        eprintln!(
            "profile: warning: {} events lost to lane ring wrap-around",
            trace.dropped
        );
    }
    ExitCode::SUCCESS
}

/// Renders a [`Trace`] in Chrome Trace Event Format: `thread_name`
/// metadata per lane, then one complete (`ph:"X"`) event per span with
/// `ts`/`dur` in microseconds.
fn trace_event_json(
    trace: &Trace,
    opts: &Options,
    report: &parafactor::core::ExtractReport,
) -> Json {
    let mut events = Vec::with_capacity(trace.lanes.len() + trace.events.len());
    for (tid, label) in trace.lanes.iter().enumerate() {
        events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(0)),
            ("tid", Json::u64(tid as u64)),
            ("args", Json::obj([("name", Json::str(label.clone()))])),
        ]));
    }
    for e in &trace.events {
        let args = Json::Obj(
            e.args
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                .collect(),
        );
        events.push(Json::obj([
            ("name", Json::str(e.name)),
            ("ph", Json::str("X")),
            ("pid", Json::u64(0)),
            ("tid", Json::u64(u64::from(e.lane))),
            ("ts", Json::Num(e.start_ns as f64 / 1000.0)),
            ("dur", Json::Num(e.dur_ns as f64 / 1000.0)),
            ("args", args),
        ]));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        (
            "otherData",
            Json::obj([
                ("algorithm", Json::str(opts.algorithm.clone())),
                ("workload", Json::str(opts.input.clone())),
                ("elapsed_us", Json::u64(report.elapsed.as_micros() as u64)),
                ("extractions", Json::u64(report.extractions as u64)),
                ("lc_before", Json::u64(report.lc_before as u64)),
                ("lc_after", Json::u64(report.lc_after as u64)),
                ("dropped_events", Json::u64(trace.dropped)),
            ]),
        ),
    ])
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return cmd_serve(&argv[1..]),
        Some("submit") => return cmd_submit(&argv[1..]),
        Some("dist") => return cmd_dist(&argv[1..]),
        Some("profile") => return cmd_profile(&argv[1..]),
        Some("bench-json") => {
            return match parafactor::benchjson::cmd_bench_json(&argv[1..]) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {}
    }
    let mut opts = parse_args();
    // Structured procs validation: 0 is an error, oversized requests are
    // capped at the host's available parallelism.
    match validate_procs(opts.procs, default_max_procs()) {
        Ok(p) => opts.procs = p,
        Err(e) => {
            eprintln!("error: --procs: {e}");
            return ExitCode::FAILURE;
        }
    }
    // 0 is meaningful for --par-threads (classic search), so only cap.
    opts.par_threads = opts.par_threads.min(default_max_procs());
    let nw = match load_circuit(&opts) {
        Ok(nw) => nw,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let original = nw.clone();
    let mut work = nw;
    println!(
        "loaded: {} inputs, {} nodes, {} literals",
        work.input_ids().count(),
        work.node_ids().count(),
        work.literal_count()
    );

    let objective = match opts.objective.as_str() {
        "area" => None,
        "timing" => Some(Objective::timing(&work)),
        "power" => Some(Objective::power(&work, 32, 0x9e3779)),
        other => {
            eprintln!("error: unknown objective {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let mut extract_cfg = ExtractConfig {
        objective: objective.clone(),
        ..ExtractConfig::default()
    };
    extract_cfg.search.par_threads = opts.par_threads;
    extract_cfg.search.topk = opts.batch_rects;
    extract_cfg.search.tile_width = opts.tile_width;

    let report = match opts.algorithm.as_str() {
        "seq" => extract_kernels(&mut work, &[], &extract_cfg),
        "replicated" => replicated_extract(
            &mut work,
            &ReplicatedConfig {
                procs: opts.procs,
                extract: extract_cfg,
                ..ReplicatedConfig::default()
            },
        ),
        "independent" => independent_extract(
            &mut work,
            &IndependentConfig {
                procs: opts.procs,
                extract: extract_cfg,
                ..IndependentConfig::default()
            },
        ),
        "lshaped-cx" => lshaped_extract_cubes(
            &mut work,
            &LShapedCxConfig {
                procs: opts.procs,
                ..LShapedCxConfig::default()
            },
        ),
        "lshaped" | "lshaped-seq" => lshaped_extract(
            &mut work,
            &LShapedConfig {
                procs: opts.procs,
                sequential: opts.algorithm == "lshaped-seq",
                extract: extract_cfg,
                ..LShapedConfig::default()
            },
        ),
        "iterative" => iterative_extract(
            &mut work,
            &IterativeConfig {
                inner: IndependentConfig {
                    procs: opts.procs,
                    extract: extract_cfg,
                    ..IndependentConfig::default()
                },
                ..IterativeConfig::default()
            },
        ),
        "script" => {
            let rep = run_script(&mut work, &ScriptConfig::default());
            println!(
                "script: {} factor passes, {:.1}% of time factoring",
                rep.factor_invocations,
                100.0 * rep.factor_fraction()
            );
            parafactor::core::ExtractReport {
                lc_before: rep.lc_before,
                lc_after: rep.lc_after,
                ..Default::default()
            }
        }
        other => {
            eprintln!("error: unknown algorithm {other:?}");
            return ExitCode::FAILURE;
        }
    };

    if opts.run_cx {
        let r = extract_common_cubes(&mut work, &[], &CubeExtractConfig::default());
        println!(
            "cube extraction: {} cubes extracted, LC {} -> {}",
            r.extractions, r.lc_before, r.lc_after
        );
    }

    println!(
        "{}: LC {} -> {} ({} extractions, {:.3?}{}{})",
        opts.algorithm,
        report.lc_before,
        work.literal_count(),
        report.extractions,
        report.elapsed,
        if opts.batch_rects > 1 {
            format!(
                ", {} passes at {:.2} rects/pass",
                report.passes,
                report.rects_per_pass()
            )
        } else {
            String::new()
        },
        if report.shipped_rectangles > 0 {
            format!(", {} partial rectangles shipped", report.shipped_rectangles)
        } else {
            String::new()
        }
    );

    if opts.show_stats {
        match stats::stats(&work) {
            Ok(s) => println!(
                "stats: inputs {}  outputs {}  nodes {}  lits(sop) {}  lits(fac) {}  depth {}  cubes {}",
                s.inputs, s.outputs, s.live_nodes, s.lits_sop, s.lits_fac, s.depth, s.cubes
            ),
            Err(e) => eprintln!("stats failed: {e}"),
        }
    }

    if opts.verify {
        match equivalent_random(&original, &work, &EquivConfig::default()) {
            Ok(true) => println!("verify: PASS (random-vector equivalence)"),
            Ok(false) => {
                eprintln!("verify: FAIL — optimized circuit differs!");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("verify error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &opts.output {
        let text = if path.ends_with(".blif") {
            write_blif(&work, "parafactor")
        } else {
            write_network(&work)
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
