//! `parafactor` — command-line front end, in the spirit of `sis`'s
//! batch mode.
//!
//! ```text
//! parafactor [OPTIONS] <INPUT>
//!
//! INPUT                 circuit file (.blif, or the native text format),
//!                       or gen:<profile>[@scale] for a synthetic circuit
//!                       (profiles: misex3 dalu des seq spla ex1010)
//! -a, --algorithm ALG   seq | replicated | independent | lshaped |
//!                       lshaped-seq | lshaped-cx | iterative | script
//!                       [default: seq]
//! -p, --procs N         processors / partitions            [default: 4]
//! -o, --output FILE     write the optimized circuit (format by extension:
//!                       .blif or anything else = native text)
//!     --objective OBJ   area | timing | power               [default: area]
//!     --cx              run common-cube extraction after kernels
//!     --seed N          workload generator seed override
//!     --stats           print the full statistics block
//!     --verify          check functional equivalence after optimizing
//! -h, --help            this text
//! ```

use parafactor::core::script::{run_script, ScriptConfig};
use parafactor::core::{
    extract_common_cubes, extract_kernels, independent_extract, iterative_extract,
    lshaped_extract, lshaped_extract_cubes, replicated_extract, CubeExtractConfig,
    ExtractConfig, IndependentConfig, IterativeConfig, LShapedCxConfig, LShapedConfig,
    Objective, ReplicatedConfig,
};
use parafactor::network::blif::{read_blif, write_blif};
use parafactor::network::io::{read_network, write_network};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::{stats, Network};
use parafactor::workloads::{generate, profile_by_name, scale_profile};
use std::process::ExitCode;

struct Options {
    input: String,
    algorithm: String,
    procs: usize,
    output: Option<String>,
    objective: String,
    run_cx: bool,
    seed: Option<u64>,
    show_stats: bool,
    verify: bool,
}

fn usage() -> ! {
    // The doc comment above is the single source of truth.
    let text = include_str!("parafactor.rs");
    for line in text.lines().skip(3) {
        let Some(stripped) = line.strip_prefix("//!") else { break };
        if stripped.trim() == "```text" || stripped.trim() == "```" {
            continue;
        }
        println!("{}", stripped.strip_prefix(' ').unwrap_or(stripped));
    }
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        algorithm: "seq".into(),
        procs: 4,
        output: None,
        objective: "area".into(),
        run_cx: false,
        seed: None,
        show_stats: false,
        verify: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut need = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "-a" | "--algorithm" => opts.algorithm = need("--algorithm"),
            "-p" | "--procs" => {
                opts.procs = need("--procs").parse().unwrap_or_else(|_| {
                    eprintln!("error: --procs must be a positive integer");
                    usage()
                })
            }
            "-o" | "--output" => opts.output = Some(need("--output")),
            "--objective" => opts.objective = need("--objective"),
            "--cx" => opts.run_cx = true,
            "--seed" => {
                opts.seed = Some(need("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("error: --seed must be an integer");
                    usage()
                }))
            }
            "--stats" => opts.show_stats = true,
            "--verify" => opts.verify = true,
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("error: unknown option {other}");
                usage()
            }
            other => {
                if !opts.input.is_empty() {
                    eprintln!("error: more than one input given");
                    usage()
                }
                opts.input = other.to_string();
            }
        }
    }
    if opts.input.is_empty() {
        eprintln!("error: no input");
        usage()
    }
    opts
}

fn load_circuit(opts: &Options) -> Result<Network, String> {
    if let Some(spec) = opts.input.strip_prefix("gen:") {
        let (name, scale) = match spec.split_once('@') {
            Some((n, s)) => (
                n,
                s.parse::<f64>()
                    .map_err(|_| format!("bad scale {s:?}"))?,
            ),
            None => (spec, 0.25),
        };
        let mut profile = profile_by_name(name)
            .ok_or_else(|| format!("unknown profile {name:?} (try dalu, seq, …)"))?;
        if let Some(seed) = opts.seed {
            profile.seed = seed;
        }
        return Ok(generate(&scale_profile(&profile, scale)));
    }
    let text = std::fs::read_to_string(&opts.input)
        .map_err(|e| format!("cannot read {}: {e}", opts.input))?;
    if opts.input.ends_with(".blif") {
        read_blif(&text).map_err(|e| e.to_string())
    } else {
        read_network(&text).map_err(|e| e.to_string())
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let nw = match load_circuit(&opts) {
        Ok(nw) => nw,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let original = nw.clone();
    let mut work = nw;
    println!(
        "loaded: {} inputs, {} nodes, {} literals",
        work.input_ids().count(),
        work.node_ids().count(),
        work.literal_count()
    );

    let objective = match opts.objective.as_str() {
        "area" => None,
        "timing" => Some(Objective::timing(&work)),
        "power" => Some(Objective::power(&work, 32, 0x9e3779)),
        other => {
            eprintln!("error: unknown objective {other:?}");
            return ExitCode::FAILURE;
        }
    };
    let extract_cfg = ExtractConfig {
        objective: objective.clone(),
        ..ExtractConfig::default()
    };

    let report = match opts.algorithm.as_str() {
        "seq" => extract_kernels(&mut work, &[], &extract_cfg),
        "replicated" => replicated_extract(
            &mut work,
            &ReplicatedConfig {
                procs: opts.procs,
                extract: extract_cfg,
                ..ReplicatedConfig::default()
            },
        ),
        "independent" => independent_extract(
            &mut work,
            &IndependentConfig {
                procs: opts.procs,
                extract: extract_cfg,
                ..IndependentConfig::default()
            },
        ),
        "lshaped-cx" => lshaped_extract_cubes(
            &mut work,
            &LShapedCxConfig {
                procs: opts.procs,
                ..LShapedCxConfig::default()
            },
        ),
        "lshaped" | "lshaped-seq" => lshaped_extract(
            &mut work,
            &LShapedConfig {
                procs: opts.procs,
                sequential: opts.algorithm == "lshaped-seq",
                extract: extract_cfg,
                ..LShapedConfig::default()
            },
        ),
        "iterative" => iterative_extract(
            &mut work,
            &IterativeConfig {
                inner: IndependentConfig {
                    procs: opts.procs,
                    extract: extract_cfg,
                    ..IndependentConfig::default()
                },
                ..IterativeConfig::default()
            },
        ),
        "script" => {
            let rep = run_script(&mut work, &ScriptConfig::default());
            println!(
                "script: {} factor passes, {:.1}% of time factoring",
                rep.factor_invocations,
                100.0 * rep.factor_fraction()
            );
            parafactor::core::ExtractReport {
                lc_before: rep.lc_before,
                lc_after: rep.lc_after,
                ..Default::default()
            }
        }
        other => {
            eprintln!("error: unknown algorithm {other:?}");
            return ExitCode::FAILURE;
        }
    };

    if opts.run_cx {
        let r = extract_common_cubes(&mut work, &[], &CubeExtractConfig::default());
        println!(
            "cube extraction: {} cubes extracted, LC {} -> {}",
            r.extractions, r.lc_before, r.lc_after
        );
    }

    println!(
        "{}: LC {} -> {} ({} extractions, {:.3?}{})",
        opts.algorithm,
        report.lc_before,
        work.literal_count(),
        report.extractions,
        report.elapsed,
        if report.shipped_rectangles > 0 {
            format!(", {} partial rectangles shipped", report.shipped_rectangles)
        } else {
            String::new()
        }
    );

    if opts.show_stats {
        match stats::stats(&work) {
            Ok(s) => println!(
                "stats: inputs {}  outputs {}  nodes {}  lits(sop) {}  lits(fac) {}  depth {}  cubes {}",
                s.inputs, s.outputs, s.live_nodes, s.lits_sop, s.lits_fac, s.depth, s.cubes
            ),
            Err(e) => eprintln!("stats failed: {e}"),
        }
    }

    if opts.verify {
        match equivalent_random(&original, &work, &EquivConfig::default()) {
            Ok(true) => println!("verify: PASS (random-vector equivalence)"),
            Ok(false) => {
                eprintln!("verify: FAIL — optimized circuit differs!");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("verify error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &opts.output {
        let text = if path.ends_with(".blif") {
            write_blif(&work, "parafactor")
        } else {
            write_network(&work)
        };
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
