//! `parafactor bench-json` — a machine-readable performance snapshot.
//!
//! Emits `BENCH_rect.json`: median nanoseconds per rectangle search for
//! the legacy vec engine, the bitset engine, and the parallel engine at
//! 1/2/4/8 threads, plus end-to-end extraction wall time per driver at
//! dalu scale 0.35 and 1.0, plus the batched-extraction table (pass
//! counts and end-to-end medians for `--batch-rects` K ∈ {1, 4, 16}).
//! The checked-in copy at the repo root is the perf trajectory
//! baseline; refresh it with `parafactor bench-json` after touching the
//! search core. `--quick` shrinks scales and reps so CI can smoke the
//! subcommand in seconds. `--assert-pass-reduction PCT` gates on K=16
//! batching cutting the seq pass count by at least PCT percent, and
//! `--assert-tile-speedup PCT` gates on the tiled panel kernel
//! (`--tile-width`) beating the scalar word loop by at least PCT
//! percent at the biggest measured scale (the `tiles` section).
//!
//! `--partition` switches to the distributed-extraction snapshot
//! (`BENCH_partition.json`): per scale in the sweep (`--scales`,
//! default 0.5/2/4), the sequential oracle's literal count, the
//! Algorithm-I-quality result (distributed, boundary recovery off), and
//! the recovered result at 1/2/4 workers, with wall times, the share of
//! the partition quality gap that boundary recovery closed, and the
//! share of the recovered wall the recovery stage consumed.
//! `--assert-gap-closed PCT` turns the worst per-worker-count closure
//! (scales below 2) into a CI gate; `--assert-recovery-share PCT` caps
//! recovery's wall share at scales ≥ 2, where extraction must dominate.

use pf_kcmatrix::{
    best_rectangle, best_rectangle_pooled, reference, CeilingUpdate, CubeRegistry, KcMatrix,
    LabelGen, SearchConfig, SearchPool,
};
use pf_serve::Json;
use pf_workloads::{generate, profile_by_name, scale_profile};
use std::time::Instant;

/// Options for the `bench-json` subcommand.
pub struct BenchJsonOptions {
    /// Smaller scales and fewer repetitions — smoke mode for CI.
    pub quick: bool,
    /// Output path (`BENCH_rect.json` by default).
    pub out: String,
    /// Fail (exit non-zero) when the pooled one-thread per-pass median
    /// exceeds the sequential engine's by more than this many percent.
    /// Skipped (with a logged warning) on a single-core host, where the
    /// pooled pass has no parallelism to buy back its coordination cost.
    pub assert_pooled_overhead: Option<f64>,
    /// Fail (exit non-zero) unless batching at K = 16 cuts the seq
    /// driver's pass count by at least this percentage versus K = 1 on
    /// every measured scale of gen:dalu.
    pub assert_pass_reduction: Option<f64>,
    /// Fail (exit non-zero) unless the warm cache-served network is
    /// byte-identical to the cold run's.
    pub assert_cache_identical: bool,
    /// Fail (exit non-zero) unless the best tiled width beats the scalar
    /// search by at least this percentage at the biggest measured scale.
    pub assert_tile_speedup: Option<f64>,
    /// Measure the distributed-partition snapshot instead of the
    /// rectangle-search one (`BENCH_partition.json` by default).
    pub partition: bool,
    /// Fail (exit non-zero) unless boundary recovery closes at least
    /// this percentage of the Algorithm-I literal-count gap at every
    /// multi-worker count (small scales — below 1 — only; large scales
    /// are wall-clock-focused and gated by `assert_recovery_share`).
    /// Implies `--partition`.
    pub assert_gap_closed: Option<f64>,
    /// Workload scale factors for the partition sweep (`--scales`).
    /// `None` picks the defaults: `[0.2]` in quick mode, `[0.5, 2, 4]`
    /// otherwise — the large scales are where extraction, not recovery,
    /// must own the wall clock.
    pub scales: Option<Vec<f64>>,
    /// Fail (exit non-zero) when the recovery stage (frontier + resub +
    /// sweep phases) takes more than this percentage of the recovered
    /// run's wall time at any multi-worker count on any scale ≥ 2.
    /// Implies `--partition`.
    pub assert_recovery_share: Option<f64>,
}

impl Default for BenchJsonOptions {
    fn default() -> Self {
        BenchJsonOptions {
            quick: false,
            out: "BENCH_rect.json".to_string(),
            assert_pooled_overhead: None,
            assert_pass_reduction: None,
            assert_cache_identical: false,
            assert_tile_speedup: None,
            partition: false,
            assert_gap_closed: None,
            scales: None,
            assert_recovery_share: None,
        }
    }
}

/// Builds the KC matrix (and weights) of the dalu workload at `scale`.
fn dalu_matrix(scale: f64) -> (KcMatrix, Vec<u32>) {
    let nw = generate(&scale_profile(
        &profile_by_name("dalu").expect("dalu profile exists"),
        scale,
    ));
    let reg = CubeRegistry::new();
    let mut m = KcMatrix::new();
    let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    for n in nw.node_ids() {
        m.add_node_kernels(
            n,
            nw.func(n),
            &pf_sop::kernel::KernelConfig::default(),
            &reg,
            &mut rl,
            &mut cl,
        );
    }
    let w = reg.weights_snapshot();
    (m, w)
}

/// Median wall time of `reps` runs of `f`, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Minimum wall time of `reps` runs of `f`, in nanoseconds. Scheduler
/// noise on a shared host is strictly additive, so the minimum is the
/// robust estimator for pure-CPU search kernels — a median of a few
/// dozen microsecond-scale samples can swing tens of percent run to
/// run, which flaked the overhead and tile-speedup CI gates. Wall-time
/// sections (end-to-end extraction, cache) keep the median: they
/// allocate and fault pages, so their minimum is unrepresentative.
fn min_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .min()
        .unwrap_or(0)
}

/// One full search over `m` with the given thread count (0 = classic
/// sequential engine) and tile width (0 = scalar word loop).
fn timed_search(
    m: &KcMatrix,
    w: &[u32],
    par_threads: usize,
    tile_width: usize,
    reps: usize,
) -> u64 {
    let cfg = SearchConfig {
        par_threads,
        tile_width,
        ..SearchConfig::default()
    };
    min_ns(reps, || {
        let (best, _) = best_rectangle(m, &|id| w[id as usize], &cfg);
        std::hint::black_box(best);
    })
}

/// End-to-end extraction wall time (milliseconds, median of `reps`) for
/// one driver on a fresh clone of `nw`.
fn timed_extract(
    nw: &pf_network::Network,
    driver: &str,
    procs: usize,
    par_threads: usize,
    reps: usize,
) -> f64 {
    use pf_core::{
        extract_kernels, independent_extract, lshaped_extract, replicated_extract, ExtractConfig,
        IndependentConfig, LShapedConfig, ReplicatedConfig,
    };
    let mut extract = ExtractConfig::default();
    extract.search.par_threads = par_threads;
    let ns = median_ns(reps, || {
        let mut work = nw.clone();
        let report = match driver {
            "seq" => extract_kernels(&mut work, &[], &extract),
            "replicated" => replicated_extract(
                &mut work,
                &ReplicatedConfig {
                    procs,
                    extract: extract.clone(),
                    ..ReplicatedConfig::default()
                },
            ),
            "independent" => independent_extract(
                &mut work,
                &IndependentConfig {
                    procs,
                    extract: extract.clone(),
                    ..IndependentConfig::default()
                },
            ),
            "lshaped" => lshaped_extract(
                &mut work,
                &LShapedConfig {
                    procs,
                    extract: extract.clone(),
                    ..LShapedConfig::default()
                },
            ),
            other => unreachable!("unknown driver {other}"),
        };
        std::hint::black_box(report.lc_after);
    });
    ns as f64 / 1e6
}

/// Runs every measurement and renders the JSON document.
pub fn run(opts: &BenchJsonOptions) -> Json {
    let (micro_scale, big_scale, micro_reps, thread_reps) = if opts.quick {
        (0.08, 0.08, 3, 3)
    } else {
        (0.35, 1.0, 15, 7)
    };
    let e2e_scales: &[f64] = if opts.quick { &[0.08] } else { &[0.35, 1.0] };

    // Micro: one full search, legacy vec engine vs bitset engine.
    eprintln!("bench-json: rect_search micro @ dalu scale {micro_scale}");
    let (m, w) = dalu_matrix(micro_scale);
    let cfg = SearchConfig::default();
    let vec_ns = min_ns(micro_reps, || {
        let (best, _) = reference::best_rectangle(&m, &|id| w[id as usize], &cfg);
        std::hint::black_box(best);
    });
    let bitset_ns = timed_search(&m, &w, 0, 0, micro_reps);
    let speedup = vec_ns as f64 / bitset_ns.max(1) as f64;
    eprintln!("bench-json:   vec {vec_ns} ns, bitset {bitset_ns} ns ({speedup:.2}x)");

    // Threads: the parallel engine on the big matrix. The seq / pooled-t1
    // pair backs the overhead gate, so it is measured *interleaved* —
    // one seq sample, one pooled sample, repeat, minimum of each. Either
    // side measured alone drifts with host load over the seconds the
    // sections take, and the gate compares the two: a few percent of
    // drift between separate measurement windows reads as pool overhead
    // that is not there.
    let overhead_reps = thread_reps.max(50);
    eprintln!("bench-json: parallel search @ dalu scale {big_scale}");
    let (mb, wb) = dalu_matrix(big_scale);
    let (seq_ns, pooled_t1_ns) = {
        let seq_cfg = SearchConfig::default();
        let t1_cfg = SearchConfig {
            par_threads: 1,
            ..SearchConfig::default()
        };
        let mut pool = SearchPool::new();
        pool.warm(1);
        let (mut seq_min, mut pooled_min) = (u64::MAX, u64::MAX);
        for _ in 0..overhead_reps {
            let t = Instant::now();
            let (best, _) = best_rectangle(&mb, &|id| wb[id as usize], &seq_cfg);
            std::hint::black_box(best);
            seq_min = seq_min.min(t.elapsed().as_nanos() as u64);
            let t = Instant::now();
            let (best, _) = best_rectangle_pooled(
                &mb,
                &|id| wb[id as usize],
                &t1_cfg,
                None,
                &mut pool,
                CeilingUpdate::Off,
            );
            std::hint::black_box(best);
            pooled_min = pooled_min.min(t.elapsed().as_nanos() as u64);
        }
        (seq_min, pooled_min)
    };
    let mut thread_members: Vec<(String, Json)> = vec![("seq_ns".to_string(), Json::u64(seq_ns))];
    for t in [1usize, 2, 4, 8] {
        let ns = timed_search(&mb, &wb, t, 0, thread_reps);
        eprintln!("bench-json:   {t} thread(s): {ns} ns");
        thread_members.push((format!("t{t}_ns"), Json::u64(ns)));
    }

    // Pooled: the same engine through a resident SearchPool (warmed
    // before the clock, ceilings off so every pass does identical work —
    // this isolates pool overhead from cross-pass ceiling wins).
    let mut pooled_members: Vec<(String, Json)> = Vec::new();
    for t in [1usize, 2, 4, 8] {
        // t = 1 comes from the interleaved gate pair above.
        let ns = if t == 1 {
            pooled_t1_ns
        } else {
            let cfg = SearchConfig {
                par_threads: t,
                ..SearchConfig::default()
            };
            let mut pool = SearchPool::new();
            pool.warm(t);
            min_ns(thread_reps, || {
                let (best, _) = best_rectangle_pooled(
                    &mb,
                    &|id| wb[id as usize],
                    &cfg,
                    None,
                    &mut pool,
                    CeilingUpdate::Off,
                );
                std::hint::black_box(best);
            })
        };
        eprintln!("bench-json:   pooled {t} thread(s): {ns} ns");
        pooled_members.push((format!("t{t}_ns"), Json::u64(ns)));
    }
    let pooled_overhead_t1_pct =
        (pooled_t1_ns as f64 - seq_ns as f64) / seq_ns.max(1) as f64 * 100.0;
    eprintln!(
        "bench-json:   pooled t1 vs seq: {pooled_overhead_t1_pct:+.2}% \
         ({pooled_t1_ns} vs {seq_ns} ns)"
    );
    pooled_members.push((
        "pooled_overhead_t1_pct".to_string(),
        Json::num(pooled_overhead_t1_pct),
    ));

    // Tiled kernel: the cache-blocked panel engine against the scalar
    // word loop (sequential search, byte-identical results), per tile
    // width. The last scale's best-width speedup backs the
    // --assert-tile-speedup gate, so every row uses `overhead_reps`
    // minima. Quick mode measures a dedicated dalu@0.35 matrix: the
    // 0.08 smoke matrix is so small that panel setup dominates and the
    // tiled kernel genuinely loses there, which would make the quick
    // gate assert the wrong thing.
    let tile_widths: [usize; 3] = [2, 4, 8];
    let mut tiles_members: Vec<(String, Json)> = Vec::new();
    let mut tile_speedup_pct = 0.0f64;
    let quick_tile = if opts.quick {
        Some(dalu_matrix(0.35))
    } else {
        None
    };
    let tile_tables: Vec<(f64, &KcMatrix, &[u32], u64, usize)> =
        if let Some((qm, qw)) = quick_tile.as_ref() {
            let scalar_ns = timed_search(qm, qw, 0, 0, overhead_reps);
            vec![(0.35, qm, qw, scalar_ns, overhead_reps)]
        } else {
            vec![
                (micro_scale, &m, &w, bitset_ns, overhead_reps),
                (big_scale, &mb, &wb, seq_ns, overhead_reps),
            ]
        };
    for (scale, tm, tw, scalar_ns, reps) in tile_tables {
        eprintln!("bench-json: tiled search @ dalu scale {scale}");
        let mut rows: Vec<(String, Json)> = vec![("scalar_ns".to_string(), Json::u64(scalar_ns))];
        let mut best_pct = f64::NEG_INFINITY;
        let mut best_width = 0usize;
        for width in tile_widths {
            let ns = timed_search(tm, tw, 0, width, reps);
            let pct = (scalar_ns as f64 / ns.max(1) as f64 - 1.0) * 100.0;
            eprintln!("bench-json:   w{width}: {ns} ns ({pct:+.1}% vs scalar)");
            if pct > best_pct {
                best_pct = pct;
                best_width = width;
            }
            rows.push((format!("w{width}_ns"), Json::u64(ns)));
        }
        rows.push(("best_width".to_string(), Json::u64(best_width as u64)));
        rows.push(("speedup_best_pct".to_string(), Json::num(best_pct)));
        tile_speedup_pct = best_pct;
        tiles_members.push((format!("scale_{scale}"), Json::Obj(rows)));
    }

    // Cache: one cold extraction vs an exact-hit replay through the
    // extraction cache — the repeat-submit path a resident service
    // serves. The replay must be byte-identical to the cold result.
    let cache_scale = micro_scale;
    eprintln!("bench-json: cache warm-vs-cold @ dalu scale {cache_scale}");
    let cache_members = {
        use pf_cache::{CacheConfig, ExtractionCache};
        use pf_core::{extract_kernels_cached, CacheHandle, ExtractConfig};
        use pf_kcmatrix::{network_digest, Digest};
        use pf_network::io::write_network;

        let nw = generate(&scale_profile(
            &profile_by_name("dalu").expect("dalu profile exists"),
            cache_scale,
        ));
        let extract = ExtractConfig::default();
        let cold_ns = median_ns(micro_reps, || {
            let mut work = nw.clone();
            let (report, _) = extract_kernels_cached(&mut work, &[], &extract, &mut None, None);
            std::hint::black_box(report.lc_after);
        });

        let cache = ExtractionCache::new(CacheConfig::default());
        let content = network_digest(&nw);
        let handle = CacheHandle {
            cache: &cache,
            key: Digest::of_str("bench:seq").combine(content),
            warm_key: content,
            admit: true,
        };
        // Fill once (the cold run that seeds the cache), keep its output
        // as the byte-identity reference.
        let mut cold_net = nw.clone();
        extract_kernels_cached(&mut cold_net, &[], &extract, &mut None, Some(&handle));
        // Warm: every repetition is an exact hit.
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut warm_net = nw.clone();
        let warm_ns = median_ns(micro_reps, || {
            let mut work = nw.clone();
            let (report, ev) =
                extract_kernels_cached(&mut work, &[], &extract, &mut None, Some(&handle));
            hits += ev.hits;
            lookups += ev.lookups;
            warm_net = work;
            std::hint::black_box(report.lc_after);
        });
        let identical = write_network(&warm_net) == write_network(&cold_net);
        let speedup = cold_ns as f64 / warm_ns.max(1) as f64;
        let hit_rate = hits as f64 / lookups.max(1) as f64;
        eprintln!(
            "bench-json:   cold {:.3} ms, warm {:.3} ms ({speedup:.1}x), \
             hit rate {hit_rate:.2}, identical: {identical}",
            cold_ns as f64 / 1e6,
            warm_ns as f64 / 1e6,
        );
        Json::obj([
            ("scale", Json::num(cache_scale)),
            ("cold_ms", Json::num(cold_ns as f64 / 1e6)),
            ("warm_ms", Json::num(warm_ns as f64 / 1e6)),
            ("speedup_cold_over_warm", Json::num(speedup)),
            ("hit_rate", Json::num(hit_rate)),
            ("identical", Json::Bool(identical)),
        ])
    };

    // End-to-end: every driver at each scale.
    let mut e2e_members: Vec<(String, Json)> = Vec::new();
    for &scale in e2e_scales {
        let nw = generate(&scale_profile(
            &profile_by_name("dalu").expect("dalu profile exists"),
            scale,
        ));
        // Medians need repetition, but the big scale runs for seconds —
        // one observation is the honest budget there.
        let reps = if scale < 0.5 { 3 } else { 1 };
        let mut drivers: Vec<(String, Json)> = Vec::new();
        for driver in ["seq", "replicated", "independent", "lshaped"] {
            let ms = timed_extract(&nw, driver, 4, 0, reps);
            eprintln!("bench-json: e2e {driver} @ {scale}: {ms:.1} ms");
            drivers.push((driver.to_string(), Json::num(ms)));
        }
        e2e_members.push((format!("scale_{scale}"), Json::Obj(drivers)));
    }

    // Batched extraction: conflict-aware top-K batching on the seq
    // driver versus the classic one-per-pass cover. Pass counts back
    // the --assert-pass-reduction gate.
    let mut batch_members: Vec<(String, Json)> = Vec::new();
    let mut pass_reduction_min = f64::INFINITY;
    for &scale in e2e_scales {
        use pf_core::{extract_kernels, ExtractConfig};
        let nw = generate(&scale_profile(
            &profile_by_name("dalu").expect("dalu profile exists"),
            scale,
        ));
        // Only the seq driver runs here (milliseconds even at scale 1),
        // so a real median is affordable at every scale.
        let reps = if opts.quick { 3 } else { 7 };
        let mut rows: Vec<(String, Json)> = Vec::new();
        let mut passes_k1 = 0u64;
        let mut reduction_pct = 0.0;
        // The trailing config is the tentpole claim: batching carries
        // K× the work past each barrier, so intra-pass threads finally
        // pay off end-to-end.
        for (label, k, threads) in [
            ("k1", 1usize, 0usize),
            ("k4", 4, 0),
            ("k16", 16, 0),
            ("k16_t2", 16, 2),
        ] {
            let mut extract = ExtractConfig::default();
            extract.search.topk = k;
            extract.search.par_threads = threads;
            let (mut passes, mut extractions, mut lc) = (0u64, 0u64, 0u64);
            let ns = median_ns(reps, || {
                let mut work = nw.clone();
                let report = extract_kernels(&mut work, &[], &extract);
                passes = report.passes as u64;
                extractions = report.extractions as u64;
                lc = report.lc_after as u64;
                std::hint::black_box(report.lc_after);
            });
            eprintln!(
                "bench-json: batch {label} @ {scale}: {passes} passes, lc {lc}, {:.1} ms",
                ns as f64 / 1e6
            );
            if label == "k1" {
                passes_k1 = passes;
            } else if label == "k16" {
                reduction_pct = if passes_k1 == 0 {
                    100.0
                } else {
                    (passes_k1.saturating_sub(passes)) as f64 / passes_k1 as f64 * 100.0
                };
            }
            rows.push((
                label.to_string(),
                Json::obj([
                    ("batch_rects", Json::u64(k as u64)),
                    ("par_threads", Json::u64(threads as u64)),
                    ("passes", Json::u64(passes)),
                    ("extractions", Json::u64(extractions)),
                    ("lc_after", Json::u64(lc)),
                    ("e2e_ms", Json::num(ns as f64 / 1e6)),
                ]),
            ));
        }
        eprintln!("bench-json: batch @ {scale}: k16 cut passes by {reduction_pct:.1}%");
        rows.push((
            "pass_reduction_k16_pct".to_string(),
            Json::num(reduction_pct),
        ));
        pass_reduction_min = pass_reduction_min.min(reduction_pct);
        batch_members.push((format!("scale_{scale}"), Json::Obj(rows)));
    }
    if !pass_reduction_min.is_finite() {
        pass_reduction_min = 0.0;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    Json::obj([
        ("schema", Json::str("parafactor/bench_rect/v1")),
        ("workload", Json::str("gen:dalu")),
        ("quick", Json::Bool(opts.quick)),
        // Thread-scaling numbers are only meaningful relative to this:
        // on a single-core host the t2/t4/t8 rows measure pure engine
        // overhead, not parallel speedup.
        ("cpu_cores", Json::u64(cores as u64)),
        (
            "rect_search",
            Json::obj([
                ("scale", Json::num(micro_scale)),
                ("vec_ns", Json::u64(vec_ns)),
                ("bitset_ns", Json::u64(bitset_ns)),
                ("speedup_vec_over_bitset", Json::num(speedup)),
            ]),
        ),
        (
            "par_search",
            Json::obj([
                ("scale", Json::num(big_scale)),
                ("threads", Json::Obj(thread_members)),
                ("pooled", Json::Obj(pooled_members)),
            ]),
        ),
        ("tiles", Json::Obj(tiles_members)),
        // Best-width tiled speedup over scalar at the biggest measured
        // scale, the --assert-tile-speedup gate value.
        ("tile_speedup_pct", Json::num(tile_speedup_pct)),
        ("cache", cache_members),
        ("extract_e2e_ms", Json::Obj(e2e_members)),
        ("batch", Json::Obj(batch_members)),
        ("pass_reduction_k16_pct_min", Json::num(pass_reduction_min)),
    ])
}

/// Runs the distributed-partition measurements and renders the JSON
/// document: for each scale in the sweep, the sequential oracle, then
/// for each worker count the recovery-off run (Algorithm-I quality —
/// cut rectangles are simply lost) against the recovery-on run, with
/// the share of the literal gap that boundary recovery closed and the
/// share of the recovered wall the recovery stage (frontier + resub +
/// sweep) consumed. Small scales (< 1) back the quality gate
/// (`--assert-gap-closed`); large scales (≥ 2) back the wall-clock gate
/// (`--assert-recovery-share`) — there extraction, not recovery, must
/// own the run.
pub fn run_partition(opts: &BenchJsonOptions) -> Json {
    use pf_core::{
        distributed_extract, extract_kernels, DistConfig, DistStats, ExtractConfig, LocalTransport,
    };

    let scales: Vec<f64> = match &opts.scales {
        Some(s) => s.clone(),
        None if opts.quick => vec![0.2],
        None => vec![0.5, 2.0, 4.0],
    };

    let mut scale_members: Vec<(String, Json)> = Vec::new();
    let mut worst_gap_closed = f64::INFINITY;
    let mut worst_recovery_share = f64::NEG_INFINITY;
    for &scale in &scales {
        // Quality medians want repetition; the large scales run long
        // enough that one observation is the honest budget.
        let reps = if opts.quick || scale >= 1.0 { 1 } else { 3 };
        let nw = generate(&scale_profile(
            &profile_by_name("dalu").expect("dalu profile exists"),
            scale,
        ));
        eprintln!("bench-json: partition quality/scaling @ dalu scale {scale}");

        // Sequential oracle: the quality ceiling every partitioned run
        // is measured against.
        let mut lc_seq = 0u64;
        let seq_ns = median_ns(reps, || {
            let mut work = nw.clone();
            extract_kernels(&mut work, &[], &ExtractConfig::default());
            lc_seq = work.literal_count() as u64;
        });
        eprintln!(
            "bench-json:   seq oracle: lc {lc_seq}, {:.1} ms",
            seq_ns as f64 / 1e6
        );

        let dist_run = |workers: usize, recovery: bool| {
            let mut lc = 0u64;
            let mut stats = DistStats::default();
            let mut extract_ns = 0u64;
            let mut recovery_ns = 0u64;
            let ns = median_ns(reps, || {
                let mut work = nw.clone();
                let transport = LocalTransport::new(workers);
                let cfg = DistConfig {
                    recovery,
                    ..DistConfig::default()
                };
                let (report, s) = distributed_extract(&mut work, &transport, &cfg);
                assert!(
                    report.completed() && !report.degraded,
                    "fault-free benchmark run must land at full quality"
                );
                lc = work.literal_count() as u64;
                let phase_ns = |name: &str| {
                    report
                        .phases
                        .iter()
                        .find(|p| p.name == name)
                        .map_or(0, |p| p.elapsed.as_nanos() as u64)
                };
                extract_ns = phase_ns("extract");
                recovery_ns = phase_ns("frontier") + phase_ns("resub") + phase_ns("sweep");
                stats = s;
            });
            (lc, ns, extract_ns, recovery_ns, stats)
        };

        let mut dist_rows: Vec<(String, Json)> = Vec::new();
        let mut scale_gap_closed = f64::INFINITY;
        let mut scale_recovery_share = f64::NEG_INFINITY;
        for workers in [1usize, 2, 4] {
            let (lc_ind, ind_ns, _, _, _) = dist_run(workers, false);
            let (lc_rec, rec_ns, extract_ns, recovery_ns, stats) = dist_run(workers, true);
            // Parts default to one per worker, so a single worker has no
            // cut boundary and no gap; a zero gap counts as fully closed.
            let gap = lc_ind as i64 - lc_seq as i64;
            let gap_closed_pct = if gap <= 0 {
                100.0
            } else {
                (lc_ind as i64 - lc_rec as i64) as f64 / gap as f64 * 100.0
            };
            // Recovery's bite out of the recovered run's wall clock: the
            // frontier + resub + sweep phases against total elapsed.
            let recovery_share_pct = recovery_ns as f64 / rec_ns.max(1) as f64 * 100.0;
            if workers > 1 {
                scale_gap_closed = scale_gap_closed.min(gap_closed_pct);
                scale_recovery_share = scale_recovery_share.max(recovery_share_pct);
            }
            eprintln!(
                "bench-json:   w{workers}: independent lc {lc_ind} ({:.1} ms), \
                 recovered lc {lc_rec} ({:.1} ms), gap closed {gap_closed_pct:.1}%, \
                 recovery share {recovery_share_pct:.1}%",
                ind_ns as f64 / 1e6,
                rec_ns as f64 / 1e6,
            );
            dist_rows.push((
                format!("w{workers}"),
                Json::obj([
                    ("workers", Json::u64(workers as u64)),
                    ("lc_independent", Json::u64(lc_ind)),
                    ("lc_recovered", Json::u64(lc_rec)),
                    ("wall_ms_independent", Json::num(ind_ns as f64 / 1e6)),
                    ("wall_ms_recovered", Json::num(rec_ns as f64 / 1e6)),
                    // The leased-extraction phase alone — the part of
                    // the wall that spreads across workers.
                    ("wall_ms_extract_phase", Json::num(extract_ns as f64 / 1e6)),
                    // The sharded recovery stage: frontier re-extraction
                    // + divisor resubstitution + the final sweep.
                    (
                        "wall_ms_recovery_phases",
                        Json::num(recovery_ns as f64 / 1e6),
                    ),
                    ("recovery_share_pct", Json::num(recovery_share_pct)),
                    ("recovery_rects", Json::u64(stats.recovery_rects)),
                    ("leases_issued", Json::u64(stats.leases_issued)),
                    ("gap_closed_pct", Json::num(gap_closed_pct)),
                ]),
            ));
        }
        if !scale_gap_closed.is_finite() {
            scale_gap_closed = 100.0;
        }
        if !scale_recovery_share.is_finite() {
            scale_recovery_share = 0.0;
        }
        // The quality gate reads small scales; the wall-clock gate reads
        // the ≥ 2 scales where extraction dominates.
        if scale < 2.0 {
            worst_gap_closed = worst_gap_closed.min(scale_gap_closed);
        }
        if scale >= 2.0 {
            worst_recovery_share = worst_recovery_share.max(scale_recovery_share);
        }
        scale_members.push((
            format!("scale_{scale}"),
            Json::obj([
                ("scale", Json::num(scale)),
                (
                    "seq",
                    Json::obj([
                        ("lc", Json::u64(lc_seq)),
                        ("wall_ms", Json::num(seq_ns as f64 / 1e6)),
                    ]),
                ),
                ("dist", Json::Obj(dist_rows)),
                ("gap_closed_pct_min", Json::num(scale_gap_closed)),
                ("recovery_share_pct_max", Json::num(scale_recovery_share)),
            ]),
        ));
    }
    if !worst_gap_closed.is_finite() {
        worst_gap_closed = 100.0;
    }
    if !worst_recovery_share.is_finite() {
        worst_recovery_share = 0.0;
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    Json::obj([
        ("schema", Json::str("parafactor/bench_partition/v2")),
        ("workload", Json::str("gen:dalu")),
        (
            "scales_measured",
            Json::Arr(scales.iter().map(|&s| Json::num(s)).collect()),
        ),
        ("quick", Json::Bool(opts.quick)),
        // Wall-time scaling across worker counts is only meaningful
        // relative to this.
        ("cpu_cores", Json::u64(cores as u64)),
        ("scales", Json::Obj(scale_members)),
        ("gap_closed_pct_min", Json::num(worst_gap_closed)),
        ("recovery_share_pct_max", Json::num(worst_recovery_share)),
    ])
}

/// CLI entry point: parses `bench-json` arguments, runs the
/// measurements, writes the file, and prints the document. Returns an
/// error message on bad arguments or an unwritable output path.
pub fn cmd_bench_json(args: &[String]) -> Result<(), String> {
    let mut opts = BenchJsonOptions::default();
    let mut out_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--out" => {
                opts.out = args.get(i + 1).ok_or("--out needs a value")?.clone();
                out_set = true;
                i += 2;
            }
            "--partition" => {
                opts.partition = true;
                i += 1;
            }
            "--assert-gap-closed" => {
                let pct = args
                    .get(i + 1)
                    .ok_or("--assert-gap-closed needs a percentage")?;
                opts.assert_gap_closed = Some(
                    pct.parse::<f64>()
                        .map_err(|e| format!("bad --assert-gap-closed {pct:?}: {e}"))?,
                );
                opts.partition = true;
                i += 2;
            }
            "--scales" => {
                let list = args
                    .get(i + 1)
                    .ok_or("--scales needs a comma-separated list (e.g. 0.5,2,4)")?;
                let parsed: Result<Vec<f64>, String> = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad --scales entry {s:?}: {e}"))
                            .and_then(|v| {
                                if v > 0.0 && v.is_finite() {
                                    Ok(v)
                                } else {
                                    Err(format!("--scales entry {s:?} must be positive"))
                                }
                            })
                    })
                    .collect();
                let parsed = parsed?;
                if parsed.is_empty() {
                    return Err("--scales needs at least one factor".to_string());
                }
                opts.scales = Some(parsed);
                opts.partition = true;
                i += 2;
            }
            "--assert-recovery-share" => {
                let pct = args
                    .get(i + 1)
                    .ok_or("--assert-recovery-share needs a percentage")?;
                opts.assert_recovery_share = Some(
                    pct.parse::<f64>()
                        .map_err(|e| format!("bad --assert-recovery-share {pct:?}: {e}"))?,
                );
                opts.partition = true;
                i += 2;
            }
            "--assert-pooled-overhead" => {
                let pct = args
                    .get(i + 1)
                    .ok_or("--assert-pooled-overhead needs a percentage")?;
                opts.assert_pooled_overhead = Some(
                    pct.parse::<f64>()
                        .map_err(|e| format!("bad --assert-pooled-overhead {pct:?}: {e}"))?,
                );
                i += 2;
            }
            "--assert-pass-reduction" => {
                let pct = args
                    .get(i + 1)
                    .ok_or("--assert-pass-reduction needs a percentage")?;
                opts.assert_pass_reduction = Some(
                    pct.parse::<f64>()
                        .map_err(|e| format!("bad --assert-pass-reduction {pct:?}: {e}"))?,
                );
                i += 2;
            }
            "--assert-cache-identical" => {
                opts.assert_cache_identical = true;
                i += 1;
            }
            "--assert-tile-speedup" => {
                let pct = args
                    .get(i + 1)
                    .ok_or("--assert-tile-speedup needs a percentage")?;
                opts.assert_tile_speedup = Some(
                    pct.parse::<f64>()
                        .map_err(|e| format!("bad --assert-tile-speedup {pct:?}: {e}"))?,
                );
                i += 2;
            }
            other => return Err(format!("unknown bench-json option {other:?}")),
        }
    }
    if opts.partition && !out_set {
        opts.out = "BENCH_partition.json".to_string();
    }
    if opts.partition
        && (opts.assert_pooled_overhead.is_some()
            || opts.assert_cache_identical
            || opts.assert_pass_reduction.is_some()
            || opts.assert_tile_speedup.is_some())
    {
        return Err(
            "--assert-pooled-overhead/--assert-cache-identical/--assert-pass-reduction/\
             --assert-tile-speedup only apply without --partition"
                .to_string(),
        );
    }
    let doc = if opts.partition {
        run_partition(&opts)
    } else {
        run(&opts)
    };
    let text = doc.to_string();
    std::fs::write(&opts.out, format!("{text}\n"))
        .map_err(|e| format!("cannot write {}: {e}", opts.out))?;
    println!("{text}");
    eprintln!("bench-json: wrote {}", opts.out);
    if let Some(limit) = opts.assert_pooled_overhead {
        // The one-thread overhead compares two single-threaded runs
        // (pooled worker-0-inline vs the spawn-free sequential engine),
        // so it is meaningful on any host, 1-core CI runners included —
        // skipping there let a 25.9% pooled regression ship unnoticed.
        // Only comparisons that need real parallel speedup may be
        // host-gated on core count.
        let got = doc
            .get("par_search")
            .and_then(|p| p.get("pooled"))
            .and_then(|p| p.get("pooled_overhead_t1_pct"))
            .and_then(Json::as_f64)
            .ok_or("pooled_overhead_t1_pct missing from the document")?;
        if got > limit {
            return Err(format!(
                "pooled one-thread overhead {got:.2}% exceeds the {limit}% limit"
            ));
        }
        eprintln!("bench-json: pooled t1 overhead {got:.2}% within {limit}% limit");
    }
    if let Some(min) = opts.assert_tile_speedup {
        let got = doc
            .get("tile_speedup_pct")
            .and_then(Json::as_f64)
            .ok_or("tile_speedup_pct missing from the document")?;
        if got < min {
            return Err(format!(
                "tiled search beat scalar by only {got:.1}%, below the {min}% floor"
            ));
        }
        eprintln!("bench-json: tiled search beat scalar by {got:.1}% (floor {min}%)");
    }
    if let Some(min) = opts.assert_pass_reduction {
        let got = doc
            .get("pass_reduction_k16_pct_min")
            .and_then(Json::as_f64)
            .ok_or("pass_reduction_k16_pct_min missing from the document")?;
        if got < min {
            return Err(format!(
                "batching at K=16 cut passes by only {got:.1}%, below the {min}% floor"
            ));
        }
        eprintln!("bench-json: K=16 batching cut passes by >= {got:.1}% (floor {min}%)");
    }
    if opts.assert_cache_identical {
        let identical = doc
            .get("cache")
            .and_then(|c| c.get("identical"))
            .and_then(|v| match v {
                Json::Bool(b) => Some(*b),
                _ => None,
            })
            .ok_or("cache.identical missing from the document")?;
        if !identical {
            return Err("warm cache-served network differs from the cold run".to_string());
        }
        eprintln!("bench-json: warm cache replay is byte-identical to the cold run");
    }
    if let Some(min) = opts.assert_gap_closed {
        let got = doc
            .get("gap_closed_pct_min")
            .and_then(Json::as_f64)
            .ok_or("gap_closed_pct_min missing from the document")?;
        if got < min {
            return Err(format!(
                "boundary recovery closed only {got:.1}% of the partition \
                 literal gap, below the {min}% floor"
            ));
        }
        eprintln!("bench-json: recovery closed >= {got:.1}% of the gap (floor {min}%)");
    }
    if let Some(limit) = opts.assert_recovery_share {
        let measured_big_scale = doc
            .get("scales_measured")
            .and_then(|s| match s {
                Json::Arr(items) => {
                    Some(items.iter().any(|v| v.as_f64().is_some_and(|f| f >= 2.0)))
                }
                _ => None,
            })
            .unwrap_or(false);
        if !measured_big_scale {
            eprintln!(
                "bench-json: WARNING --assert-recovery-share skipped: \
                 no scale >= 2 in the sweep"
            );
        } else {
            let got = doc
                .get("recovery_share_pct_max")
                .and_then(Json::as_f64)
                .ok_or("recovery_share_pct_max missing from the document")?;
            if got > limit {
                return Err(format!(
                    "recovery stage took {got:.1}% of the recovered wall at \
                     scale >= 2, above the {limit}% ceiling"
                ));
            }
            eprintln!(
                "bench-json: recovery stage took <= {got:.1}% of the recovered \
                 wall (ceiling {limit}%)"
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_the_schema() {
        let doc = run(&BenchJsonOptions {
            quick: true,
            ..BenchJsonOptions::default()
        });
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("parafactor/bench_rect/v1")
        );
        let micro = doc.get("rect_search").expect("rect_search present");
        assert!(micro.get("vec_ns").and_then(Json::as_u64).unwrap() > 0);
        assert!(micro.get("bitset_ns").and_then(Json::as_u64).unwrap() > 0);
        let threads = doc
            .get("par_search")
            .and_then(|p| p.get("threads"))
            .expect("threads table");
        for key in ["seq_ns", "t1_ns", "t2_ns", "t4_ns", "t8_ns"] {
            assert!(
                threads.get(key).and_then(Json::as_u64).unwrap() > 0,
                "{key}"
            );
        }
        let pooled = doc
            .get("par_search")
            .and_then(|p| p.get("pooled"))
            .expect("pooled table");
        for key in ["t1_ns", "t2_ns", "t4_ns", "t8_ns"] {
            assert!(pooled.get(key).and_then(Json::as_u64).unwrap() > 0, "{key}");
        }
        assert!(pooled
            .get("pooled_overhead_t1_pct")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
        // Tiles section: scalar + per-width minima. Quick mode measures
        // a dedicated dalu@0.35 matrix (0.08 is too small for tiling).
        let tiles = doc
            .get("tiles")
            .and_then(|t| t.get("scale_0.35"))
            .expect("tiles section present");
        for key in ["scalar_ns", "w2_ns", "w4_ns", "w8_ns"] {
            assert!(tiles.get(key).and_then(Json::as_u64).unwrap() > 0, "{key}");
        }
        assert!(tiles.get("best_width").and_then(Json::as_u64).unwrap() > 0);
        assert!(tiles
            .get("speedup_best_pct")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
        assert!(doc
            .get("tile_speedup_pct")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
        let cache = doc.get("cache").expect("cache section present");
        assert!(cache.get("cold_ms").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(cache.get("warm_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(cache
            .get("speedup_cold_over_warm")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
        assert_eq!(cache.get("hit_rate").and_then(Json::as_f64), Some(1.0));
        assert_eq!(cache.get("identical"), Some(&Json::Bool(true)));
        assert!(doc.get("extract_e2e_ms").is_some());
        // Batch section: one row per K at each scale, with pass counts
        // that can only shrink as K grows, plus the gate scalar.
        let batch = doc
            .get("batch")
            .and_then(|b| b.get("scale_0.08"))
            .expect("batch section present");
        let passes_of = |k: &str| {
            batch
                .get(k)
                .and_then(|r| r.get("passes"))
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{k}.passes present"))
        };
        let (p1, p4, p16) = (passes_of("k1"), passes_of("k4"), passes_of("k16"));
        assert!(p1 >= 1);
        assert!(p4 <= p1, "k4 took more passes ({p4} vs {p1})");
        assert!(p16 <= p4, "k16 took more passes ({p16} vs {p4})");
        assert!(batch
            .get("pass_reduction_k16_pct")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
        assert!(doc
            .get("pass_reduction_k16_pct_min")
            .and_then(Json::as_f64)
            .unwrap()
            .is_finite());
    }

    #[test]
    fn quick_partition_run_produces_the_schema() {
        let doc = run_partition(&BenchJsonOptions {
            quick: true,
            partition: true,
            ..BenchJsonOptions::default()
        });
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("parafactor/bench_partition/v2")
        );
        let row_for = |scale: &str| {
            doc.get("scales")
                .and_then(|s| s.get(scale))
                .unwrap_or_else(|| panic!("scale row {scale} present"))
        };
        let sc = row_for("scale_0.2");
        let seq = sc.get("seq").expect("seq oracle present");
        let lc_seq = seq.get("lc").and_then(Json::as_u64).unwrap();
        assert!(lc_seq > 0);
        for w in ["w1", "w2", "w4"] {
            let row = sc
                .get("dist")
                .and_then(|d| d.get(w))
                .unwrap_or_else(|| panic!("dist row {w} present"));
            let lc_ind = row.get("lc_independent").and_then(Json::as_u64).unwrap();
            let lc_rec = row.get("lc_recovered").and_then(Json::as_u64).unwrap();
            // Recovery (extraction + resubstitution + sweep) can only
            // improve on the independent result.
            assert!(lc_rec <= lc_ind, "{w}: {lc_rec} vs {lc_ind}");
            assert!(lc_rec > 0, "{w}");
            assert!(row.get("leases_issued").and_then(Json::as_u64).unwrap() > 0);
            assert!(row
                .get("gap_closed_pct")
                .and_then(Json::as_f64)
                .unwrap()
                .is_finite());
            let share = row
                .get("recovery_share_pct")
                .and_then(Json::as_f64)
                .unwrap();
            assert!((0.0..=100.0).contains(&share), "{w}: share {share}");
        }
        // A single worker has one partition, no frontier, and — with the
        // recovery-skip fast path — zero recovery wall.
        let w1 = sc.get("dist").and_then(|d| d.get("w1")).unwrap();
        assert_eq!(
            w1.get("recovery_rects").and_then(Json::as_u64),
            Some(0),
            "single partition must skip recovery"
        );
        for key in ["gap_closed_pct_min", "recovery_share_pct_max"] {
            assert!(
                sc.get(key).and_then(Json::as_f64).unwrap().is_finite(),
                "{key}"
            );
            assert!(
                doc.get(key).and_then(Json::as_f64).unwrap().is_finite(),
                "top-level {key}"
            );
        }
        // No scale >= 2 in the quick default: the wall-clock gate value
        // degrades to 0 rather than going missing.
        assert_eq!(
            doc.get("recovery_share_pct_max").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn partition_sweep_honours_explicit_scales() {
        let doc = run_partition(&BenchJsonOptions {
            quick: true,
            partition: true,
            scales: Some(vec![0.1, 0.15]),
            ..BenchJsonOptions::default()
        });
        let scales = doc.get("scales").expect("scales table");
        assert!(scales.get("scale_0.1").is_some());
        assert!(scales.get("scale_0.15").is_some());
        assert!(scales.get("scale_0.2").is_none());
        let measured = doc.get("scales_measured").unwrap();
        let Json::Arr(items) = measured else {
            panic!("scales_measured must be an array")
        };
        assert_eq!(items.len(), 2);
    }
}
