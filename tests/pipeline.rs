//! End-to-end pipeline tests on generated workloads: every algorithm on
//! every (scaled-down) paper circuit, checking functional equivalence,
//! quality ordering and report consistency.

use parafactor::core::{
    extract_kernels, independent_extract, lshaped_extract, replicated_extract, ExtractConfig,
    IndependentConfig, LShapedConfig, ReplicatedConfig,
};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::Network;
use parafactor::workloads::{generate, paper_profiles, scale_profile};

const TEST_SCALE: f64 = 0.06;

fn circuits() -> Vec<(String, Network)> {
    paper_profiles()
        .into_iter()
        .map(|p| {
            let nw = generate(&scale_profile(&p, TEST_SCALE));
            (p.name, nw)
        })
        .collect()
}

#[test]
fn sequential_on_every_circuit() {
    for (name, nw) in circuits() {
        let mut opt = nw.clone();
        let r = extract_kernels(&mut opt, &[], &ExtractConfig::default());
        assert!(r.lc_after < r.lc_before, "{name}: no reduction");
        assert_eq!(
            r.lc_before as i64 - r.lc_after as i64,
            r.total_value,
            "{name}: accounting broken"
        );
        assert!(
            equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap(),
            "{name}: equivalence broken"
        );
    }
}

#[test]
fn replicated_matches_sequential_everywhere() {
    // The paper's own Table 2 notes a tiny LC wobble between the
    // sequential and distributed runs "due to the different search path
    // they might have taken" (value ties broken differently). Allow
    // 0.5%, exact equality is checked on the deterministic example.
    for (name, nw) in circuits() {
        let mut s = nw.clone();
        let rs = extract_kernels(&mut s, &[], &ExtractConfig::default());
        let mut r = nw.clone();
        let rr = replicated_extract(
            &mut r,
            &ReplicatedConfig {
                procs: 3,
                ..ReplicatedConfig::default()
            },
        );
        let diff = (rr.lc_after as f64 - rs.lc_after as f64).abs();
        assert!(
            diff <= (rs.lc_after as f64 * 0.005).max(2.0),
            "{name}: {} vs {}",
            rr.lc_after,
            rs.lc_after
        );
        assert!(
            equivalent_random(&nw, &r, &EquivConfig::default()).unwrap(),
            "{name}"
        );
    }
}

#[test]
fn independent_quality_degrades_with_partitions() {
    for (name, nw) in circuits() {
        let mut s = nw.clone();
        let rs = extract_kernels(&mut s, &[], &ExtractConfig::default());
        for procs in [2usize, 4] {
            let mut i = nw.clone();
            let ri = independent_extract(
                &mut i,
                &IndependentConfig {
                    procs,
                    ..IndependentConfig::default()
                },
            );
            assert!(
                ri.lc_after >= rs.lc_after,
                "{name} p{procs}: I beat the full-matrix optimum"
            );
            assert!(
                equivalent_random(&nw, &i, &EquivConfig::default()).unwrap(),
                "{name} p{procs}"
            );
        }
    }
}

#[test]
fn lshaped_sequential_beats_independent_on_average() {
    // Table 4 + §5.4: the L-shape recovers much of what Algorithm I
    // loses. Checked in aggregate over all circuits (individual circuits
    // may tie or flip).
    let mut l_total = 0usize;
    let mut i_total = 0usize;
    for (_name, nw) in circuits() {
        let mut l = nw.clone();
        let rl = lshaped_extract(
            &mut l,
            &LShapedConfig {
                procs: 3,
                sequential: true,
                ..LShapedConfig::default()
            },
        );
        let mut i = nw.clone();
        let ri = independent_extract(
            &mut i,
            &IndependentConfig {
                procs: 3,
                ..IndependentConfig::default()
            },
        );
        l_total += rl.lc_after;
        i_total += ri.lc_after;
        assert!(equivalent_random(&nw, &l, &EquivConfig::default()).unwrap());
    }
    assert!(
        l_total <= i_total,
        "aggregate L quality {l_total} must not trail I {i_total}"
    );
}

#[test]
fn lshaped_threaded_on_every_circuit() {
    for (name, nw) in circuits() {
        for procs in [2usize, 4] {
            let mut l = nw.clone();
            let rl = lshaped_extract(
                &mut l,
                &LShapedConfig {
                    procs,
                    sequential: false,
                    ..LShapedConfig::default()
                },
            );
            assert!(
                rl.lc_after <= rl.lc_before,
                "{name} p{procs}: literal count grew"
            );
            assert!(
                equivalent_random(&nw, &l, &EquivConfig::default()).unwrap(),
                "{name} p{procs}: equivalence broken"
            );
            assert!(l.validate().is_ok(), "{name} p{procs}");
        }
    }
}

#[test]
fn script_pipeline_on_two_circuits() {
    use parafactor::core::script::{run_script, ScriptConfig};
    for name in ["dalu", "seq"] {
        let p = parafactor::workloads::profile_by_name(name).unwrap();
        let nw = generate(&scale_profile(&p, TEST_SCALE));
        let mut opt = nw.clone();
        let rep = run_script(&mut opt, &ScriptConfig::default());
        assert!(rep.lc_after <= rep.lc_before, "{name}");
        assert!(rep.factor_fraction() > 0.0 && rep.factor_fraction() <= 1.0);
        assert!(
            equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap(),
            "{name}: script broke the circuit"
        );
    }
}
