//! Loopback integration tests for the pf-serve TCP front end: a real
//! `Server` bound to 127.0.0.1, driven over JSON lines exactly like an
//! external client.

use parafactor::serve::json::parse;
use parafactor::serve::{request_lines, Json, Server, ServiceConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn start(cfg: ServiceConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: SocketAddr) -> Json {
    let responses =
        request_lines(addr, &[r#"{"op":"shutdown"}"#.to_string()]).expect("shutdown round-trip");
    parse(&responses[0]).expect("shutdown response is json")
}

fn assert_balanced(metrics: &Json) {
    let get = |k: &str| {
        metrics
            .get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("metrics missing {k}: {metrics}"))
    };
    assert_eq!(
        get("submitted"),
        get("accepted")
            + get("rejected_full")
            + get("rejected_shutdown")
            + get("rejected_invalid")
            + get("quarantined"),
        "submission side out of balance: {metrics}"
    );
    assert_eq!(
        get("accepted"),
        get("completed") + get("timed_out") + get("failed") + get("drained"),
        "outcome side out of balance: {metrics}"
    );
}

#[test]
fn burst_of_32_jobs_spanning_all_algorithms() {
    let (addr, handle) = start(ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServiceConfig::default()
    });
    let algorithms = ["seq", "replicated", "independent", "lshaped"];
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let alg = algorithms[i % algorithms.len()];
                s.spawn(move || {
                    let line = format!(
                        r#"{{"op":"submit","algorithm":"{alg}","workload":"gen:misex3@0.05","procs":2}}"#
                    );
                    let r = request_lines(addr, &[line]).expect("submit round-trip");
                    parse(&r[0]).expect("response is json")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &responses {
        assert_eq!(
            r.get("status").and_then(Json::as_str),
            Some("completed"),
            "{r}"
        );
        // Every response carries per-job metrics: queue wait, run time,
        // literal savings.
        let m = r
            .get("metrics")
            .unwrap_or_else(|| panic!("no metrics: {r}"));
        assert!(
            m.get("queue_wait_us").and_then(Json::as_u64).is_some(),
            "{r}"
        );
        assert!(m.get("run_us").and_then(Json::as_u64).unwrap() > 0, "{r}");
        assert!(m.get("saved").and_then(Json::as_f64).is_some(), "{r}");
        assert!(
            m.get("lc_before").and_then(Json::as_u64).unwrap() > 0,
            "{r}"
        );
    }
    let final_snapshot = shutdown(addr);
    let metrics = final_snapshot.get("metrics").expect("final metrics");
    assert_eq!(metrics.get("submitted").and_then(Json::as_u64), Some(32));
    assert_eq!(metrics.get("completed").and_then(Json::as_u64), Some(32));
    assert_balanced(metrics);
    // All four algorithms actually ran.
    let algs = metrics.get("algorithms").expect("per-algorithm metrics");
    for alg in algorithms {
        assert_eq!(
            algs.get(alg)
                .and_then(|a| a.get("runs"))
                .and_then(Json::as_u64),
            Some(8),
            "{alg}: {metrics}"
        );
    }
    handle.join().unwrap();
}

#[test]
fn deadline_expiry_is_a_structured_timeout_and_the_pool_survives() {
    let (addr, handle) = start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    // Both requests ride one connection, so the follow-up job runs on the
    // same (sole) worker that just serviced the timed-out job.
    let responses = request_lines(
        addr,
        &[
            r#"{"op":"submit","algorithm":"lshaped","workload":"gen:dalu@0.3","procs":2,"deadline_ms":1}"#
                .to_string(),
            r#"{"op":"submit","algorithm":"seq","workload":"gen:misex3@0.05"}"#.to_string(),
        ],
    )
    .expect("protocol round-trip");
    let timed_out = parse(&responses[0]).unwrap();
    assert_eq!(
        timed_out.get("status").and_then(Json::as_str),
        Some("timed_out"),
        "{timed_out}"
    );
    assert!(timed_out.get("error").and_then(Json::as_str).is_some());
    // Partial metrics still come back with a timeout.
    assert!(timed_out.get("metrics").is_some(), "{timed_out}");
    let next = parse(&responses[1]).unwrap();
    assert_eq!(
        next.get("status").and_then(Json::as_str),
        Some("completed"),
        "pool poisoned by the timeout: {next}"
    );
    let metrics = shutdown(addr);
    let metrics = metrics.get("metrics").unwrap();
    assert_eq!(metrics.get("timed_out").and_then(Json::as_u64), Some(1));
    assert_eq!(metrics.get("completed").and_then(Json::as_u64), Some(1));
    assert_balanced(metrics);
    handle.join().unwrap();
}

#[test]
fn queue_full_burst_gets_backpressure_rejections() {
    let (addr, handle) = start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|_| {
                s.spawn(move || {
                    let line = r#"{"op":"submit","algorithm":"seq","workload":"gen:dalu@0.25"}"#
                        .to_string();
                    let r = request_lines(addr, &[line]).expect("submit round-trip");
                    parse(&r[0]).expect("response is json")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut completed = 0;
    let mut rejected_full = 0;
    for r in &responses {
        match r.get("status").and_then(Json::as_str) {
            Some("completed") => completed += 1,
            Some("rejected") => {
                assert_eq!(
                    r.get("reason").and_then(Json::as_str),
                    Some("queue_full"),
                    "{r}"
                );
                assert_eq!(r.get("capacity").and_then(Json::as_u64), Some(1), "{r}");
                rejected_full += 1;
            }
            other => panic!("unexpected status {other:?}: {r}"),
        }
    }
    assert!(completed >= 1, "no job got through the burst");
    assert!(
        rejected_full >= 1,
        "burst of 12 against capacity 1 never hit backpressure"
    );
    let metrics = shutdown(addr);
    let metrics = metrics.get("metrics").unwrap();
    assert_eq!(metrics.get("submitted").and_then(Json::as_u64), Some(12));
    assert_eq!(
        metrics.get("rejected_full").and_then(Json::as_u64),
        Some(rejected_full)
    );
    assert_balanced(metrics);
    handle.join().unwrap();
}

#[test]
fn two_racing_shutdowns_both_get_a_final_snapshot() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, handle) = start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        ..ServiceConfig::default()
    });
    // Open both connections before firing either request so the two
    // shutdown ops genuinely race inside the server.
    let mut a = std::net::TcpStream::connect(addr).expect("connect a");
    let mut b = std::net::TcpStream::connect(addr).expect("connect b");
    a.write_all(b"{\"op\":\"shutdown\"}\n").expect("send a");
    b.write_all(b"{\"op\":\"shutdown\"}\n").expect("send b");
    for stream in [a, b] {
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).expect("read");
        let r = parse(&line).expect("shutdown response is json");
        // Shutdown is idempotent: the loser of the race still gets a
        // well-formed ok + snapshot, never an error or a dropped line.
        assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"), "{r}");
        assert_balanced(r.get("metrics").expect("snapshot"));
    }
    handle.join().unwrap();
}

#[test]
fn deaf_client_pipelining_submits_without_reading_does_not_wedge_the_server() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, handle) = start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    // Fire a pipeline of submits without draining a single response; a
    // server that answers synchronously into a small socket buffer must
    // not deadlock against a client that is not reading yet.
    for _ in 0..8 {
        stream
            .write_all(
                b"{\"op\":\"submit\",\"algorithm\":\"seq\",\"workload\":\"gen:misex3@0.05\"}\n",
            )
            .expect("pipelined submit");
    }
    let mut reader = BufReader::new(stream);
    for i in 0..8 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        let r = parse(&line).unwrap_or_else(|e| panic!("response {i} not json ({e}): {line:?}"));
        assert_eq!(
            r.get("status").and_then(Json::as_str),
            Some("completed"),
            "{r}"
        );
    }
    drop(reader);
    let metrics = shutdown(addr);
    let metrics = metrics.get("metrics").unwrap();
    assert_eq!(metrics.get("completed").and_then(Json::as_u64), Some(8));
    assert_balanced(metrics);
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_in_flight_jobs_and_the_final_snapshot_balances() {
    let (addr, handle) = start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    });
    std::thread::scope(|s| {
        let submitters: Vec<_> = (0..6)
            .map(|_| {
                s.spawn(move || {
                    let line =
                        r#"{"op":"submit","algorithm":"independent","workload":"gen:dalu@0.2","procs":2}"#
                            .to_string();
                    let r = request_lines(addr, &[line]).expect("submit round-trip");
                    parse(&r[0]).expect("response is json")
                })
            })
            .collect();
        // Let the submissions land, then ask for a graceful shutdown
        // while some of them are still queued or running.
        std::thread::sleep(Duration::from_millis(50));
        let final_snapshot = shutdown(addr);
        let metrics = final_snapshot.get("metrics").expect("final metrics");
        // Graceful drain: every accepted job ran to an outcome; nothing
        // is left queued or in flight when the snapshot is taken.
        assert_eq!(metrics.get("queue_depth").and_then(Json::as_u64), Some(0));
        assert_eq!(metrics.get("in_flight").and_then(Json::as_f64), Some(0.0));
        assert_balanced(metrics);
        let mut completed = 0;
        for sub in submitters {
            let r = sub.join().unwrap();
            // A submitter that raced past the close gets a structured
            // shutting_down rejection; every accepted job must complete
            // (drained-not-dropped), never be abandoned.
            match r.get("status").and_then(Json::as_str) {
                Some("completed") => completed += 1,
                Some("rejected") => assert_eq!(
                    r.get("reason").and_then(Json::as_str),
                    Some("shutting_down"),
                    "{r}"
                ),
                other => panic!("unexpected status {other:?}: {r}"),
            }
        }
        assert!(completed >= 1, "no job was accepted before shutdown");
    });
    handle.join().unwrap();
}
