//! Edge-case integration tests: degenerate networks through every
//! pipeline, oracle cross-checks, and IO corner cases.

use parafactor::core::{
    extract_common_cubes, extract_kernels, independent_extract, iterative_extract, lshaped_extract,
    replicated_extract, CubeExtractConfig, ExtractConfig, IndependentConfig, IterativeConfig,
    LShapedConfig, ReplicatedConfig,
};
use parafactor::network::blif::{read_blif, write_blif};
use parafactor::network::io::{read_network, write_network};
use parafactor::network::sim::{equivalent_random, simulate, EquivConfig};
use parafactor::network::Network;
use parafactor::sop::minimize::eval_sop;
use parafactor::sop::{Cube, Lit, Sop};

fn sop_of(cubes: &[&[u32]]) -> Sop {
    Sop::from_cubes(
        cubes
            .iter()
            .map(|c| Cube::from_lits(c.iter().map(|&v| Lit::pos(v)))),
    )
}

/// A single-node network with no extractable structure.
fn trivial() -> Network {
    let mut nw = Network::new();
    let a = nw.add_input("a").unwrap();
    let b = nw.add_input("b").unwrap();
    let f = nw.add_node("f", sop_of(&[&[a, b]])).unwrap();
    nw.mark_output(f).unwrap();
    nw
}

#[test]
fn all_algorithms_handle_trivial_network() {
    let nw = trivial();
    let run = |name: &str, f: &dyn Fn(&mut Network)| {
        let mut copy = nw.clone();
        f(&mut copy);
        assert_eq!(copy.literal_count(), 2, "{name} changed a trivial network");
        assert!(
            equivalent_random(&nw, &copy, &EquivConfig::default()).unwrap(),
            "{name}"
        );
    };
    run("seq", &|n| {
        extract_kernels(n, &[], &ExtractConfig::default());
    });
    run("replicated", &|n| {
        replicated_extract(n, &ReplicatedConfig::default());
    });
    run("independent", &|n| {
        independent_extract(n, &IndependentConfig::default());
    });
    run("lshaped", &|n| {
        lshaped_extract(n, &LShapedConfig::default());
    });
    run("lshaped-seq", &|n| {
        lshaped_extract(
            n,
            &LShapedConfig {
                sequential: true,
                ..LShapedConfig::default()
            },
        );
    });
    run("iterative", &|n| {
        iterative_extract(n, &IterativeConfig::default());
    });
    run("cx", &|n| {
        extract_common_cubes(n, &[], &CubeExtractConfig::default());
    });
}

#[test]
fn lshaped_with_more_procs_than_nodes() {
    let nw = trivial();
    for procs in [3usize, 8] {
        for sequential in [true, false] {
            let mut copy = nw.clone();
            let r = lshaped_extract(
                &mut copy,
                &LShapedConfig {
                    procs,
                    sequential,
                    ..LShapedConfig::default()
                },
            );
            assert_eq!(r.lc_after, r.lc_before, "procs={procs} seq={sequential}");
            assert!(copy.validate().is_ok());
        }
    }
}

#[test]
fn network_with_no_internal_nodes() {
    let mut nw = Network::new();
    nw.add_input("a").unwrap();
    nw.add_input("b").unwrap();
    for procs in [1usize, 4] {
        let mut copy = nw.clone();
        let r = lshaped_extract(
            &mut copy,
            &LShapedConfig {
                procs,
                ..LShapedConfig::default()
            },
        );
        assert_eq!(r.extractions, 0);
        let r = independent_extract(
            &mut copy,
            &IndependentConfig {
                procs,
                ..IndependentConfig::default()
            },
        );
        assert_eq!(r.extractions, 0);
    }
}

#[test]
fn constant_function_nodes_survive_all_pipelines() {
    let mut nw = Network::new();
    let a = nw.add_input("a").unwrap();
    let one = nw.add_node("one", Sop::one()).unwrap();
    let zero = nw.add_node("zero", Sop::zero()).unwrap();
    let f = nw.add_node("f", sop_of(&[&[a, one]])).unwrap();
    nw.mark_output(f).unwrap();
    nw.mark_output(one).unwrap();
    nw.mark_output(zero).unwrap();
    let original = nw.clone();
    extract_kernels(&mut nw, &[], &ExtractConfig::default());
    assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
}

#[test]
fn eval_sop_agrees_with_bit_parallel_simulation() {
    // Two independent evaluation oracles must agree: the scalar
    // truth-table evaluator from pf-sop and the packed simulator from
    // pf-network.
    let mut nw = Network::new();
    let a = nw.add_input("a").unwrap();
    let b = nw.add_input("b").unwrap();
    let c = nw.add_input("c").unwrap();
    let f = nw
        .add_node(
            "f",
            Sop::from_cubes([
                Cube::from_lits([Lit::pos(a), Lit::neg(b)]),
                Cube::from_lits([Lit::pos(b), Lit::pos(c)]),
                Cube::from_lits([Lit::neg(a), Lit::neg(c)]),
            ]),
        )
        .unwrap();
    nw.mark_output(f).unwrap();
    // Pack all 8 assignments into one 64-bit word per input.
    let mut words = [0u64; 3];
    for m in 0..8u64 {
        for (i, w) in words.iter_mut().enumerate() {
            *w |= ((m >> i) & 1) << m;
        }
    }
    let sim = simulate(&nw, &words).unwrap();
    for m in 0..8u64 {
        let expect = eval_sop(nw.func(f), m);
        let got = (sim[f as usize] >> m) & 1 == 1;
        assert_eq!(expect, got, "assignment {m:03b}");
    }
}

#[test]
fn io_formats_cross_convert() {
    // text → network → blif → network → text, function preserved.
    let text = "
        inputs a b c
        node g = a b | ~a c
        node f = g c | a
        outputs f
    ";
    let nw = read_network(text).unwrap();
    let via_blif = read_blif(&write_blif(&nw, "x")).unwrap();
    let via_text = read_network(&write_network(&via_blif)).unwrap();
    assert!(equivalent_random(&nw, &via_text, &EquivConfig::default()).unwrap());
}

#[test]
fn deep_chain_network_no_stack_overflow() {
    // 3000-deep chain exercises the iterative DFS in topo_order and the
    // level computation.
    let mut nw = Network::new();
    let a = nw.add_input("a").unwrap();
    let mut prev = a;
    for i in 0..3000u32 {
        prev = nw.add_node(format!("n{i}"), sop_of(&[&[prev]])).unwrap();
    }
    nw.mark_output(prev).unwrap();
    assert!(nw.validate().is_ok());
    assert_eq!(parafactor::network::stats::depth(&nw).unwrap(), 3000);
}

#[test]
fn extraction_on_wide_flat_pla() {
    // A PLA-like single-output node with many cubes — the ex1010/spla
    // shape, minimally.
    let mut nw = Network::new();
    let vars: Vec<u32> = (0..10)
        .map(|i| nw.add_input(format!("v{i}")).unwrap())
        .collect();
    let mut cubes = Vec::new();
    for i in 0..8 {
        for j in 0..3 {
            cubes.push(vec![
                vars[i % 10],
                vars[(i + j + 1) % 10],
                vars[(i + 5) % 10],
            ]);
        }
    }
    let refs: Vec<&[u32]> = cubes.iter().map(|c| c.as_slice()).collect();
    let f = nw.add_node("f", sop_of(&refs)).unwrap();
    nw.mark_output(f).unwrap();
    let original = nw.clone();
    let r = extract_kernels(&mut nw, &[], &ExtractConfig::default());
    assert!(r.lc_after <= r.lc_before);
    assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
}

#[test]
fn objective_weighted_runs_through_parallel_algorithms() {
    use parafactor::core::Objective;
    let (nw, _) = parafactor::network::example::example_1_1();
    let obj = Objective::timing(&nw);
    for procs in [2usize, 3] {
        let mut copy = nw.clone();
        let cfg = ExtractConfig {
            objective: Some(obj.clone()),
            ..ExtractConfig::default()
        };
        independent_extract(
            &mut copy,
            &IndependentConfig {
                procs,
                extract: cfg,
                ..IndependentConfig::default()
            },
        );
        assert!(
            equivalent_random(&nw, &copy, &EquivConfig::default()).unwrap(),
            "procs={procs}"
        );
    }
}
