//! Workspace-level property tests: random small networks through the
//! full extraction pipelines, checking the global invariants every
//! algorithm must keep — functional equivalence, monotone literal
//! count, valid DAG structure.

use parafactor::core::{
    extract_kernels, independent_extract, lshaped_extract, ExtractConfig, IndependentConfig,
    LShapedConfig,
};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::Network;
use parafactor::sop::{Cube, Lit, Sop};
use proptest::prelude::*;

/// A random multi-level network: `n_inputs` PIs, `n_nodes` nodes whose
/// cubes draw from PIs and earlier nodes (positive phase for nodes).
fn arb_network(
    n_inputs: usize,
    n_nodes: usize,
    max_cubes: usize,
) -> impl Strategy<Value = Network> {
    // A node spec is a vec of cubes; each cube a set of "source picks".
    let cube = prop::collection::btree_set(0..(n_inputs + n_nodes) as u32, 1..=3usize);
    let node = prop::collection::vec(cube, 1..=max_cubes);
    prop::collection::vec(node, 1..=n_nodes).prop_map(move |specs| {
        let mut nw = Network::new();
        let inputs: Vec<u32> = (0..n_inputs)
            .map(|i| nw.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut nodes: Vec<u32> = Vec::new();
        for (k, spec) in specs.into_iter().enumerate() {
            let cubes: Vec<Cube> = spec
                .into_iter()
                .map(|srcs| {
                    Cube::from_lits(srcs.into_iter().map(|s| {
                        // Map the pick to an existing signal: inputs
                        // always available, earlier nodes when they
                        // exist. Dedup by variable happens in from_lits.
                        let pool_len = inputs.len() + nodes.len();
                        let idx = (s as usize) % pool_len;
                        let var = if idx < inputs.len() {
                            inputs[idx]
                        } else {
                            nodes[idx - inputs.len()]
                        };
                        Lit::pos(var)
                    }))
                })
                .collect();
            let id = nw
                .add_node(format!("n{k}"), Sop::from_cubes(cubes))
                .unwrap();
            nodes.push(id);
        }
        // Sinks become outputs.
        let fo = nw.fanout_map();
        for &n in &nodes {
            if fo[n as usize].is_empty() {
                nw.mark_output(n).unwrap();
            }
        }
        nw
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_extraction_invariants(nw in arb_network(6, 8, 6)) {
        let mut opt = nw.clone();
        let r = extract_kernels(&mut opt, &[], &ExtractConfig::default());
        prop_assert!(r.lc_after <= r.lc_before);
        prop_assert_eq!(r.lc_before as i64 - r.lc_after as i64, r.total_value);
        prop_assert!(opt.validate().is_ok());
        prop_assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn independent_extraction_invariants(nw in arb_network(6, 8, 6)) {
        let mut opt = nw.clone();
        let r = independent_extract(&mut opt, &IndependentConfig {
            procs: 2,
            ..IndependentConfig::default()
        });
        prop_assert!(r.lc_after <= r.lc_before);
        prop_assert!(opt.validate().is_ok());
        prop_assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn lshaped_sequential_invariants(nw in arb_network(6, 8, 6)) {
        let mut opt = nw.clone();
        let r = lshaped_extract(&mut opt, &LShapedConfig {
            procs: 3,
            sequential: true,
            ..LShapedConfig::default()
        });
        prop_assert!(r.lc_after <= r.lc_before);
        prop_assert!(opt.validate().is_ok());
        prop_assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }

    #[test]
    fn lshaped_threaded_invariants(nw in arb_network(5, 6, 5)) {
        let mut opt = nw.clone();
        let r = lshaped_extract(&mut opt, &LShapedConfig {
            procs: 2,
            sequential: false,
            ..LShapedConfig::default()
        });
        prop_assert!(r.lc_after <= r.lc_before);
        prop_assert!(opt.validate().is_ok());
        prop_assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
    }

    /// The deterministic paths (sequential and L-shaped round-robin)
    /// give identical results on repeated runs.
    #[test]
    fn deterministic_paths_are_deterministic(nw in arb_network(6, 8, 5)) {
        let run_seq = |nw: &parafactor::network::Network| {
            let mut c = nw.clone();
            let r = extract_kernels(&mut c, &[], &ExtractConfig::default());
            (c.literal_count(), r.extractions)
        };
        prop_assert_eq!(run_seq(&nw), run_seq(&nw));
        let run_l = |nw: &parafactor::network::Network| {
            let mut c = nw.clone();
            let r = lshaped_extract(&mut c, &LShapedConfig {
                procs: 3,
                sequential: true,
                ..LShapedConfig::default()
            });
            (c.literal_count(), r.extractions, r.shipped_rectangles)
        };
        prop_assert_eq!(run_l(&nw), run_l(&nw));
    }

    #[test]
    fn partitioner_is_exhaustive_and_balanced(nw in arb_network(6, 10, 5)) {
        use parafactor::partition::{partition_network, PartitionConfig};
        let cfg = PartitionConfig::default();
        for k in [2usize, 3] {
            let p = partition_network(&nw, k, &cfg);
            let mut count = 0usize;
            for q in 0..k {
                count += p.part_nodes(q).len();
            }
            prop_assert_eq!(count, nw.node_ids().count());
            let w = p.part_weights();
            let total: u64 = w.iter().sum();
            // Balance is infeasible when a single vertex outweighs the
            // cap, so the invariant is cap ∨ heaviest-vertex.
            let heaviest = (0..p.graph.len())
                .map(|v| p.graph.weight(v))
                .max()
                .unwrap_or(0);
            let cap = ((total as f64 / k as f64) * (1.0 + cfg.tolerance)).ceil() as u64;
            for x in w {
                prop_assert!(x <= cap.max(heaviest));
            }
        }
    }
}
