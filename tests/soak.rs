//! Soak tests for the threaded algorithms: larger circuits, more
//! processors, repeated runs. Expensive — run explicitly with
//! `cargo test --release --test soak -- --ignored`.

use parafactor::core::{
    extract_kernels, independent_extract, lshaped_extract, ExtractConfig, IndependentConfig,
    LShapedConfig,
};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::workloads::{generate, profile_by_name, scale_profile};

#[test]
#[ignore = "soak test: run with --ignored in release mode"]
fn lshaped_threaded_soak() {
    let profile = scale_profile(&profile_by_name("seq").unwrap(), 0.3);
    let nw = generate(&profile);
    let mut baseline = nw.clone();
    let base = extract_kernels(&mut baseline, &[], &ExtractConfig::default());
    for round in 0..5 {
        for procs in [2usize, 4, 8] {
            let mut copy = nw.clone();
            let r = lshaped_extract(
                &mut copy,
                &LShapedConfig {
                    procs,
                    ..LShapedConfig::default()
                },
            );
            assert!(
                r.lc_after <= r.lc_before,
                "round {round} procs {procs}: LC grew"
            );
            assert!(
                (r.lc_after as f64) < base.lc_after as f64 * 1.15,
                "round {round} procs {procs}: quality collapsed ({} vs {})",
                r.lc_after,
                base.lc_after
            );
            assert!(
                equivalent_random(&nw, &copy, &EquivConfig::default()).unwrap(),
                "round {round} procs {procs}: function broken"
            );
            assert!(copy.validate().is_ok());
        }
    }
}

#[test]
#[ignore = "soak test: run with --ignored in release mode"]
fn independent_soak_all_circuits() {
    for name in ["dalu", "des", "seq", "spla", "ex1010"] {
        let profile = scale_profile(&profile_by_name(name).unwrap(), 0.2);
        let nw = generate(&profile);
        for procs in [2usize, 6] {
            let mut copy = nw.clone();
            let r = independent_extract(
                &mut copy,
                &IndependentConfig {
                    procs,
                    ..IndependentConfig::default()
                },
            );
            assert!(r.lc_after < r.lc_before, "{name} p{procs}");
            assert!(
                equivalent_random(&nw, &copy, &EquivConfig::default()).unwrap(),
                "{name} p{procs}"
            );
        }
    }
}

#[test]
#[ignore = "soak test: run with --ignored in release mode"]
fn full_script_soak() {
    use parafactor::core::script::{run_script, ScriptConfig};
    let profile = scale_profile(&profile_by_name("dalu").unwrap(), 0.4);
    let nw = generate(&profile);
    let mut copy = nw.clone();
    let rep = run_script(&mut copy, &ScriptConfig::default());
    assert!(rep.lc_after < rep.lc_before);
    assert!(equivalent_random(&nw, &copy, &EquivConfig::default()).unwrap());
}
