//! Golden-value integration tests on the paper's worked example
//! (Equation 1 / Example 1.1): every algorithm, exact expected numbers
//! where deterministic.

use parafactor::core::{
    extract_kernels, independent_extract, lshaped_extract, replicated_extract, ExtractConfig,
    IndependentConfig, LShapedConfig, ReplicatedConfig,
};
use parafactor::network::example::example_1_1;
use parafactor::network::sim::{equivalent_random, EquivConfig};

#[test]
fn sequential_golden_sequence() {
    // 33 → 25 → 22 → 21: first the paper's X = a+b (saves 8), then
    // Y = a+c (3), then the single-row Z (1).
    let (mut nw, _) = example_1_1();
    let r = extract_kernels(&mut nw, &[], &ExtractConfig::default());
    assert_eq!((r.lc_before, r.lc_after, r.extractions), (33, 21, 3));
}

#[test]
fn all_algorithms_preserve_function_and_rank_as_paper_predicts() {
    let (original, _) = example_1_1();

    // Sequential baseline.
    let mut s = original.clone();
    let rs = extract_kernels(&mut s, &[], &ExtractConfig::default());

    // Algorithm R: identical search path ⇒ identical quality.
    let mut r = original.clone();
    let rr = replicated_extract(
        &mut r,
        &ReplicatedConfig {
            procs: 4,
            ..ReplicatedConfig::default()
        },
    );
    assert_eq!(rr.lc_after, rs.lc_after, "R must match sequential quality");

    // Algorithm I: can only do worse than (or equal to) sequential.
    let mut i = original.clone();
    let ri = independent_extract(
        &mut i,
        &IndependentConfig {
            procs: 2,
            ..IndependentConfig::default()
        },
    );
    assert!(ri.lc_after >= rs.lc_after);

    // Algorithm L (sequential p-way): between sequential and I's typical
    // loss; never worse than the initial network.
    let mut l = original.clone();
    let rl = lshaped_extract(
        &mut l,
        &LShapedConfig {
            procs: 2,
            sequential: true,
            ..LShapedConfig::default()
        },
    );
    assert!(rl.lc_after >= rs.lc_after);
    assert!(
        rl.lc_after <= ri.lc_after,
        "L-shape recovers cross-partition rectangles"
    );

    for (name, nw) in [("seq", &s), ("R", &r), ("I", &i), ("L", &l)] {
        assert!(
            equivalent_random(&original, nw, &EquivConfig::default()).unwrap(),
            "{name} broke functional equivalence"
        );
        assert!(nw.validate().is_ok(), "{name} produced an invalid network");
    }
}

#[test]
fn table2_shape_quality_equal_across_procs() {
    // Table 2's quality columns are constant across processor counts.
    let mut lcs = Vec::new();
    for procs in [1usize, 2, 4, 6] {
        let (mut nw, _) = example_1_1();
        let r = replicated_extract(
            &mut nw,
            &ReplicatedConfig {
                procs,
                ..ReplicatedConfig::default()
            },
        );
        lcs.push(r.lc_after);
    }
    assert!(lcs.windows(2).all(|w| w[0] == w[1]), "{lcs:?}");
}

#[test]
fn table4_shape_lshaped_sequential_close_to_sis() {
    // Table 4: the k-way L-shaped decomposition costs almost nothing on
    // this example — within 4 literals of the sequential optimum.
    let (mut base, _) = example_1_1();
    let rs = extract_kernels(&mut base, &[], &ExtractConfig::default());
    for ways in [2usize, 4, 6] {
        let (mut nw, _) = example_1_1();
        let rl = lshaped_extract(
            &mut nw,
            &LShapedConfig {
                procs: ways,
                sequential: true,
                ..LShapedConfig::default()
            },
        );
        assert!(
            rl.lc_after as i64 - rs.lc_after as i64 <= 4,
            "{ways}-way: {} vs {}",
            rl.lc_after,
            rs.lc_after
        );
    }
}

#[test]
fn example_5_1_label_spaces() {
    // §5.2: processor p labels its kernels from p·offset + 1. After a
    // 2-way L-shaped run the extracted nodes carry per-processor name
    // prefixes — both processors contributed on this example or at
    // least one did; names must be namespaced either way.
    let (mut nw, _) = example_1_1();
    let r = lshaped_extract(
        &mut nw,
        &LShapedConfig {
            procs: 2,
            sequential: true,
            ..LShapedConfig::default()
        },
    );
    assert!(r.extractions > 0);
    let all_prefixed = nw
        .node_ids()
        .filter(|&n| nw.name(n).contains("kx_"))
        .all(|n| nw.name(n).starts_with("L0_") || nw.name(n).starts_with("L1_"));
    assert!(all_prefixed);
}
