//! Integration tests for the pf-cache subsystem end to end.
//!
//! Two layers are exercised here:
//!
//! * **pf-core** — `run_cached` over random networks, proving the
//!   tentpole guarantee for every driver: an exact hit replays the
//!   memoized factored form *byte-identical* to the cold run that
//!   filled it, with a well-formed `cache` phase in the report.
//! * **pf-serve** — a real `Service` with the cache wired in: a struck
//!   (previously-panicking) fingerprint is never admitted, a panic
//!   mid-fill leaves no partial entry, capacity-1 LRU eviction counts
//!   line up, and the extended metrics balance identity
//!   (`cache_lookups == cache_hits + cache_misses`) closes the books.

use parafactor::cache::{CacheConfig, ExtractionCache};
use parafactor::core::{
    extract_kernels, independent_extract, lshaped_extract, replicated_extract, run_cached,
    CacheHandle, ExtractConfig, ExtractReport, FaultPlan, FaultRule, IndependentConfig,
    LShapedConfig, ReplicatedConfig, Tracer,
};
use parafactor::kcmatrix::{network_digest, Digest};
use parafactor::network::io::write_network;
use parafactor::network::Network;
use parafactor::serve::{Algorithm, JobOutcome, JobSpec, Service, ServiceConfig};
use parafactor::sop::{Cube, Lit, Sop};
use proptest::prelude::*;
use std::sync::Arc;

/// A random multi-level network (same shape as the workspace property
/// suite): `n_inputs` PIs, nodes whose cubes draw from PIs and earlier
/// nodes, sinks marked as outputs.
fn arb_network(
    n_inputs: usize,
    n_nodes: usize,
    max_cubes: usize,
) -> impl Strategy<Value = Network> {
    let cube = prop::collection::btree_set(0..(n_inputs + n_nodes) as u32, 1..=3usize);
    let node = prop::collection::vec(cube, 1..=max_cubes);
    prop::collection::vec(node, 1..=n_nodes).prop_map(move |specs| {
        let mut nw = Network::new();
        let inputs: Vec<u32> = (0..n_inputs)
            .map(|i| nw.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut nodes: Vec<u32> = Vec::new();
        for (k, spec) in specs.into_iter().enumerate() {
            let cubes: Vec<Cube> = spec
                .into_iter()
                .map(|srcs| {
                    Cube::from_lits(srcs.into_iter().map(|s| {
                        let pool_len = inputs.len() + nodes.len();
                        let idx = (s as usize) % pool_len;
                        let var = if idx < inputs.len() {
                            inputs[idx]
                        } else {
                            nodes[idx - inputs.len()]
                        };
                        Lit::pos(var)
                    }))
                })
                .collect();
            let id = nw
                .add_node(format!("n{k}"), Sop::from_cubes(cubes))
                .unwrap();
            nodes.push(id);
        }
        let fo = nw.fanout_map();
        for &n in &nodes {
            if fo[n as usize].is_empty() {
                nw.mark_output(n).unwrap();
            }
        }
        nw
    })
}

/// Runs one of the four drivers by tag. Deterministic configurations
/// throughout — the byte-identity assertion compares the replay against
/// the very run that filled the cache, so determinism is not required,
/// but it keeps failures reproducible.
fn drive(alg: &str, nw: &mut Network) -> ExtractReport {
    match alg {
        "seq" => extract_kernels(nw, &[], &ExtractConfig::default()),
        "replicated" => replicated_extract(
            nw,
            &ReplicatedConfig {
                procs: 2,
                ..ReplicatedConfig::default()
            },
        ),
        "independent" => independent_extract(
            nw,
            &IndependentConfig {
                procs: 2,
                ..IndependentConfig::default()
            },
        ),
        "lshaped" => lshaped_extract(
            nw,
            &LShapedConfig {
                procs: 2,
                sequential: true,
                ..LShapedConfig::default()
            },
        ),
        other => unreachable!("unknown driver {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole guarantee, all four drivers: the cold run fills the
    /// cache, the exact-hit resubmission replays a network that prints
    /// byte-identically, carries the cold run's quality numbers, and
    /// reports a well-formed `cache` phase summing to its elapsed time.
    #[test]
    fn exact_hits_replay_byte_identically_for_every_driver(nw in arb_network(6, 8, 5)) {
        for alg in ["seq", "replicated", "independent", "lshaped"] {
            let cache = ExtractionCache::new(CacheConfig::default());
            let tracer = Tracer::disarmed();
            let content = network_digest(&nw);
            let h = CacheHandle {
                cache: &cache,
                key: Digest::of_str(alg).combine(content),
                warm_key: content,
                admit: true,
            };

            let mut cold = nw.clone();
            let (cold_report, ev) =
                run_cached(&mut cold, &tracer, Some(&h), |n| drive(alg, n));
            prop_assert_eq!(ev.misses, 1, "{}: first run misses", alg);
            prop_assert_eq!(ev.inserted, 1, "{}: completed run admitted", alg);

            let mut warm = nw.clone();
            let (hit_report, ev2) =
                run_cached(&mut warm, &tracer, Some(&h), |n| drive(alg, n));
            prop_assert_eq!(ev2.hits, 1, "{}: resubmission hits", alg);
            prop_assert_eq!(
                write_network(&warm),
                write_network(&cold),
                "{}: replay byte-identical",
                alg
            );
            prop_assert_eq!(hit_report.lc_before, cold_report.lc_before);
            prop_assert_eq!(hit_report.lc_after, cold_report.lc_after);
            prop_assert_eq!(hit_report.extractions, cold_report.extractions);
            prop_assert_eq!(hit_report.total_value, cold_report.total_value);
            prop_assert_eq!(hit_report.phases.len(), 1);
            prop_assert_eq!(hit_report.phases[0].name, "cache");
            prop_assert_eq!(hit_report.phases_total(), hit_report.elapsed);
        }
    }
}

/// Suppresses the default panic hook's stderr spew for injected panics.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("fault injected"))
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

fn seq(workload: &str) -> JobSpec {
    JobSpec::new(Algorithm::Seq, workload)
}

/// A worker panic mid-fill (inside the driver, before any insert) must
/// leave no partial cache entry, and the struck fingerprint must never
/// seed the cache afterwards even when its reruns complete cleanly.
#[test]
fn panic_mid_fill_leaves_no_entry_and_struck_fingerprints_are_never_admitted() {
    quiet_injected_panics();
    // One caught panic inside the sequential cover loop: the job fails
    // structurally, the fingerprint takes a strike, the thread survives.
    let plan = FaultPlan::new(11).with_rule(FaultRule::panic_at("seq:cover").max_hits(1));
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        fault_plan: Some(Arc::new(plan)),
        // Strikes quarantine only at the threshold; this test wants the
        // struck fingerprint to keep *running* so admission is what's
        // under test, not the front door.
        poison_threshold: 100,
        ..ServiceConfig::default()
    });
    let client = service.client();
    let cache = client.cache().expect("cache enabled by default");

    let o = client
        .submit(seq("gen:misex3@0.05"))
        .expect("accepted")
        .wait();
    assert!(matches!(o, JobOutcome::Failed { .. }), "{o:?}");
    assert_eq!(cache.len(), 0, "panic mid-fill left a partial entry");

    // The rerun completes — but a fingerprint with a strike on record
    // must never seed the cache.
    let o = client
        .submit(seq("gen:misex3@0.05"))
        .expect("accepted")
        .wait();
    assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
    assert_eq!(cache.len(), 0, "struck fingerprint was admitted");

    // An unstruck fingerprint is admitted as usual.
    let o = client
        .submit(seq("gen:dalu@0.05"))
        .expect("accepted")
        .wait();
    assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
    assert_eq!(cache.len(), 1);

    service.shutdown();
    let m = client.metrics();
    assert!(m.balanced(), "extended balance identity broken");
    assert_eq!(m.cache_hits.get(), 0, "nothing was cached to hit");
    assert_eq!(m.panics.get(), 1);
}

/// Capacity-1 LRU through the service: each new fingerprint evicts the
/// previous entry, a back-to-back resubmission hits, and the eviction /
/// lookup counters agree with the story.
#[test]
fn capacity_one_lru_evicts_and_the_counters_agree() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        cache_entries: 1,
        ..ServiceConfig::default()
    });
    let client = service.client();
    let run = |w: &str| {
        let o = client.submit(seq(w)).expect("accepted").wait();
        assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
    };
    run("gen:misex3@0.05"); // miss, insert A
    run("gen:dalu@0.05"); // miss, insert B, evict A
    run("gen:dalu@0.05"); // hit B
    run("gen:misex3@0.05"); // miss again (A was evicted), insert, evict B
    assert_eq!(client.cache().unwrap().len(), 1);

    service.shutdown();
    let m = client.metrics();
    assert!(m.balanced(), "extended balance identity broken");
    assert_eq!(m.cache_lookups.get(), 4);
    assert_eq!(m.cache_hits.get(), 1);
    assert_eq!(m.cache_misses.get(), 3);
    assert_eq!(m.cache_evictions.get(), 2);
}

/// Satellite 2 at the service layer: a cache-served job's report is
/// well-formed — non-empty phases led by `cache`, phases summing to
/// elapsed — and carries the cold run's quality numbers.
#[test]
fn cache_served_jobs_emit_well_formed_reports() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    let client = service.client();
    let cold = match client
        .submit(seq("gen:misex3@0.05"))
        .expect("accepted")
        .wait()
    {
        JobOutcome::Completed(jr) => jr,
        other => panic!("cold run: {other:?}"),
    };
    let warm = match client
        .submit(seq("gen:misex3@0.05"))
        .expect("accepted")
        .wait()
    {
        JobOutcome::Completed(jr) => jr,
        other => panic!("warm run: {other:?}"),
    };
    assert!(!warm.report.phases.is_empty());
    assert_eq!(warm.report.phases[0].name, "cache");
    assert_eq!(warm.report.phases_total(), warm.report.elapsed);
    assert_eq!(warm.report.lc_before, cold.report.lc_before);
    assert_eq!(warm.report.lc_after, cold.report.lc_after);
    assert_eq!(warm.report.extractions, cold.report.extractions);

    service.shutdown();
    let m = client.metrics();
    assert!(m.balanced());
    assert_eq!(m.cache_hits.get(), 1);
    assert_eq!(m.cache_misses.get(), 1);
}
