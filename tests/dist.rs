//! Distributed extraction end to end: the lease-based coordinator
//! through the public facade, and the serve-layer `dist` op over real
//! TCP, both under deterministic fault injection.
//!
//! The contract mirrors the chaos suite's, lifted to the distributed
//! plane: killing any single worker (or the recovery worker) mid-run
//! still yields exactly one answer, the result network stays well-formed
//! and functionally equivalent to the input, and the lease ledger closes
//! (`leases_issued == leases_resolved + leases_expired`).

use parafactor::core::{distributed_extract, DistConfig, FaultPlan, FaultRule, LocalTransport};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::Network;
use parafactor::serve::json::parse;
use parafactor::serve::{request_lines, Json, Server, ServerConfig, ServiceConfig};
use parafactor::workloads::{generate, CircuitProfile};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Suppresses the default panic hook's stderr spew for injected panics
/// and worker kill pills (they are the point here); real panics print.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let expected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("fault injected") || s.contains("killed"));
            if !expected {
                prev(info);
            }
        }));
    });
}

fn test_network() -> Network {
    generate(&CircuitProfile::small("dist-integration", 23))
}

fn fast_cfg() -> DistConfig {
    DistConfig {
        lease_timeout: Duration::from_millis(1_500),
        poll_interval: Duration::from_millis(2),
        retry_backoff: Duration::from_millis(1),
        ..DistConfig::default()
    }
}

fn start_server(server_cfg: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind_with("127.0.0.1:0", ServiceConfig::default(), server_cfg)
        .expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: SocketAddr) {
    let _ = request_lines(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
}

/// Asserts the `dist` object of a response (or metrics snapshot) closes
/// its lease ledger and reports itself balanced.
fn assert_lease_ledger(dist: &Json) {
    let get = |k: &str| {
        dist.get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("dist object missing {k}: {dist}"))
    };
    assert_eq!(
        get("leases_issued"),
        get("leases_resolved") + get("leases_expired"),
        "lease ledger out of balance: {dist}"
    );
    assert_eq!(
        dist.get("balanced").and_then(Json::as_bool),
        Some(true),
        "{dist}"
    );
}

/// Killing one of two workers while its sub-job is in flight: the lease
/// expires, the coordinator fails over to the survivor, and the run
/// still lands exactly one full-quality answer.
#[test]
fn killing_a_worker_mid_run_yields_one_answer_and_a_well_formed_network() {
    quiet_injected_panics();
    let mut nw = test_network();
    let original = nw.clone();
    // Stall worker 0's pickup long enough for the kill pill (sent right
    // after dispatch) to land while the sub-job is in flight.
    let plan = Arc::new(
        FaultPlan::new(29)
            .with_rule(FaultRule::stall_at("dist:pickup", Duration::from_millis(50)).max_hits(1)),
    );
    let t = LocalTransport::with_faults(2, Some(plan), Duration::from_millis(50));
    t.kill_worker(0);
    let cfg = DistConfig {
        lease_timeout: Duration::from_millis(400),
        ..fast_cfg()
    };
    let (report, stats) = distributed_extract(&mut nw, &t, &cfg);
    assert!(report.completed(), "the run must still answer");
    assert!(report.lc_after < report.lc_before, "extraction happened");
    assert!(stats.balanced(), "{stats:?}");
    assert_eq!(
        stats.leases_issued,
        stats.leases_resolved + stats.leases_expired
    );
    assert_eq!(t.alive_count(), 1, "exactly the killed worker is gone");
    assert!(nw.validate().is_ok(), "result network is well-formed");
    assert!(equivalent_random(&original, &nw, &EquivConfig::default()).unwrap());
}

/// The `dist` op over TCP in local-worker mode, with a fault plan that
/// panics one worker at pickup: the response reports failover and a
/// balanced lease ledger, and the service metrics absorb the lease
/// counters without breaking the balance identity.
#[test]
fn dist_op_fails_over_a_killed_worker_and_balances_the_books() {
    quiet_injected_panics();
    let (addr, handle) = start_server(ServerConfig::default());
    let responses = request_lines(
        addr,
        &[
            concat!(
                r#"{"op":"dist","workload":"gen:misex3@0.1","workers":2,"#,
                r#""lease_timeout_ms":400,"fault_plan":"dist:pickup=panic#1","fault_seed":31}"#
            )
            .to_string(),
            r#"{"op":"metrics"}"#.to_string(),
        ],
    )
    .expect("dist round-trip");
    let r = parse(&responses[0]).expect("dist response is json");
    assert_eq!(
        r.get("status").and_then(Json::as_str),
        Some("completed"),
        "{r}"
    );
    let dist = r.get("dist").expect("dist stats");
    assert_lease_ledger(dist);
    assert!(
        dist.get("failovers").and_then(Json::as_u64).unwrap() >= 1,
        "the pickup panic never failed over: {dist}"
    );
    assert!(
        dist.get("leases_expired").and_then(Json::as_u64).unwrap() >= 1,
        "{dist}"
    );

    // The service metrics fold the same lease ledger and stay balanced.
    let m = parse(&responses[1]).expect("metrics response is json");
    let m = m.get("metrics").expect("metrics body");
    let get = |k: &str| m.get(k).and_then(Json::as_u64).unwrap();
    assert_eq!(get("submitted"), 1);
    assert_eq!(get("completed"), 1);
    assert_eq!(
        get("leases_issued"),
        get("leases_resolved") + get("leases_expired"),
        "{m}"
    );
    assert!(get("failovers") >= 1, "{m}");
    shutdown(addr);
    handle.join().unwrap();
}

/// Killing the recovery workers (every recovery attempt panics until
/// the retry budget is gone) degrades gracefully: the `dist` op still
/// completes, flags `degraded`, reports zero recovery rectangles, and
/// keeps the ledger balanced. The workload must present a non-empty
/// frontier (misex3's PLA profile partitions cleanly and would take the
/// skip-recovery fast path, leaving the fault site unvisited), so dalu
/// — real multi-level sharing — is the subject. The `dist:recover`
/// site prefix matches both sharded stages (`dist:recover:frontier`
/// and `dist:recover:resub`).
#[test]
fn dist_op_degrades_gracefully_when_the_recovery_worker_dies() {
    quiet_injected_panics();
    let (addr, handle) = start_server(ServerConfig::default());
    let responses = request_lines(
        addr,
        &[concat!(
            r#"{"op":"dist","workload":"gen:dalu@0.1","workers":2,"#,
            r#""fault_plan":"dist:recover=panic","fault_seed":3}"#
        )
        .to_string()],
    )
    .expect("dist round-trip");
    let r = parse(&responses[0]).expect("dist response is json");
    assert_eq!(
        r.get("status").and_then(Json::as_str),
        Some("completed"),
        "degraded runs still answer: {r}"
    );
    let metrics = r.get("metrics").expect("metrics");
    assert_eq!(
        metrics.get("degraded").and_then(Json::as_bool),
        Some(true),
        "recovery loss must be flagged: {r}"
    );
    assert_eq!(
        metrics.get("recovery_rects").and_then(Json::as_u64),
        Some(0)
    );
    let dist = r.get("dist").expect("dist stats");
    assert_lease_ledger(dist);
    assert_eq!(dist.get("degraded_jobs").and_then(Json::as_u64), Some(1));
    shutdown(addr);
    handle.join().unwrap();
}

/// One recovery shard dying once fails over instead of degrading: the
/// request pins `recovery_shards`, a single resub-shard lease panics
/// (`#1` caps the fault at one hit), the coordinator re-leases the
/// shard, and the run lands at full quality with the new resub
/// counters populated in the metrics block.
#[test]
fn dist_op_fails_over_a_dying_recovery_shard_without_degrading() {
    quiet_injected_panics();
    let (addr, handle) = start_server(ServerConfig::default());
    let responses = request_lines(
        addr,
        &[concat!(
            r#"{"op":"dist","workload":"gen:dalu@0.1","workers":2,"recovery_shards":2,"#,
            r#""lease_timeout_ms":400,"fault_plan":"dist:recover:resub=panic#1","fault_seed":7}"#
        )
        .to_string()],
    )
    .expect("dist round-trip");
    let r = parse(&responses[0]).expect("dist response is json");
    assert_eq!(
        r.get("status").and_then(Json::as_str),
        Some("completed"),
        "{r}"
    );
    let metrics = r.get("metrics").expect("metrics");
    assert_eq!(
        metrics.get("degraded").and_then(Json::as_bool),
        Some(false),
        "one shard death within budget must not degrade: {r}"
    );
    assert!(
        metrics
            .get("resub_pairs_considered")
            .and_then(Json::as_u64)
            .unwrap()
            > 0,
        "recovery resub ran and counted its pairs: {r}"
    );
    let dist = r.get("dist").expect("dist stats");
    assert_lease_ledger(dist);
    assert!(
        dist.get("failovers").and_then(Json::as_u64).unwrap() >= 1,
        "the shard panic never failed over: {dist}"
    );
    assert_eq!(dist.get("degraded_jobs").and_then(Json::as_u64), Some(0));
    shutdown(addr);
    handle.join().unwrap();
}

/// The `dist` op in remote-peer mode with one dead peer in the list: the
/// coordinator marks it dead after the connect retries, fails its leases
/// over to the live worker server, and completes.
#[test]
fn dist_op_with_a_dead_remote_peer_fails_over_to_the_live_one() {
    quiet_injected_panics();
    let (coordinator, coord_handle) = start_server(ServerConfig::default());
    let (worker, worker_handle) = start_server(ServerConfig {
        worker: true,
        ..ServerConfig::default()
    });
    // A bound-then-dropped listener: connects to this port are refused
    // deterministically, simulating a worker that died before the run.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().unwrap()
    };
    let line = format!(
        r#"{{"op":"dist","workload":"gen:misex3@0.1","peers":["{dead}","{worker}"],"lease_timeout_ms":10000}}"#
    );
    let responses = request_lines(coordinator, &[line]).expect("dist round-trip");
    let r = parse(&responses[0]).expect("dist response is json");
    assert_eq!(
        r.get("status").and_then(Json::as_str),
        Some("completed"),
        "{r}"
    );
    let dist = r.get("dist").expect("dist stats");
    assert_lease_ledger(dist);
    assert!(
        dist.get("failovers").and_then(Json::as_u64).unwrap() >= 1,
        "the dead peer's lease never failed over: {dist}"
    );
    let m = r.get("metrics").expect("metrics");
    assert!(m.get("lc_after").and_then(Json::as_u64).unwrap() > 0);
    shutdown(coordinator);
    shutdown(worker);
    coord_handle.join().unwrap();
    worker_handle.join().unwrap();
}
