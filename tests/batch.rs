//! Property tests for conflict-aware batched extraction: for any K and
//! thread count the batched cover stays functionally equivalent and
//! within tolerance of the one-per-pass quality oracle, never takes
//! more passes, and K = 1 is byte-identical to the classic engine.

use parafactor::core::{extract_kernels, ExtractConfig};
use parafactor::network::io::write_network;
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::Network;
use parafactor::sop::{Cube, Lit, Sop};
use proptest::prelude::*;

/// A random multi-level network (same shape as tests/props.rs).
fn arb_network(
    n_inputs: usize,
    n_nodes: usize,
    max_cubes: usize,
) -> impl Strategy<Value = Network> {
    let cube = prop::collection::btree_set(0..(n_inputs + n_nodes) as u32, 1..=3usize);
    let node = prop::collection::vec(cube, 1..=max_cubes);
    prop::collection::vec(node, 1..=n_nodes).prop_map(move |specs| {
        let mut nw = Network::new();
        let inputs: Vec<u32> = (0..n_inputs)
            .map(|i| nw.add_input(format!("i{i}")).unwrap())
            .collect();
        let mut nodes: Vec<u32> = Vec::new();
        for (k, spec) in specs.into_iter().enumerate() {
            let cubes: Vec<Cube> = spec
                .into_iter()
                .map(|srcs| {
                    Cube::from_lits(srcs.into_iter().map(|s| {
                        let pool_len = inputs.len() + nodes.len();
                        let idx = (s as usize) % pool_len;
                        let var = if idx < inputs.len() {
                            inputs[idx]
                        } else {
                            nodes[idx - inputs.len()]
                        };
                        Lit::pos(var)
                    }))
                })
                .collect();
            let id = nw
                .add_node(format!("n{k}"), Sop::from_cubes(cubes))
                .unwrap();
            nodes.push(id);
        }
        let fo = nw.fanout_map();
        for &n in &nodes {
            if fo[n as usize].is_empty() {
                nw.mark_output(n).unwrap();
            }
        }
        nw
    })
}

fn run(
    nw: &Network,
    topk: usize,
    par_threads: usize,
) -> (Network, parafactor::core::ExtractReport) {
    let mut work = nw.clone();
    let mut cfg = ExtractConfig::default();
    cfg.search.topk = topk;
    cfg.search.par_threads = par_threads;
    let report = extract_kernels(&mut work, &[], &cfg);
    (work, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched extraction at any K and thread count keeps the global
    /// invariants and lands within tolerance of the one-per-pass oracle
    /// — in no more passes.
    #[test]
    fn batched_extraction_tracks_the_oracle(
        nw in arb_network(6, 8, 6),
        topk in 2usize..17,
        threads in 0usize..3,
    ) {
        let (oracle_nw, oracle) = run(&nw, 1, 0);
        prop_assert!(oracle_nw.validate().is_ok());
        let (opt, r) = run(&nw, topk, threads);
        prop_assert!(opt.validate().is_ok());
        prop_assert!(equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap());
        prop_assert!(r.lc_after <= r.lc_before);
        prop_assert_eq!(r.lc_before as i64 - r.lc_after as i64, r.total_value);
        // Quality tolerance: within 1% (rounded up) of the oracle.
        let tol = oracle.lc_after + oracle.lc_after.div_ceil(100);
        prop_assert!(
            r.lc_after <= tol,
            "topk={} threads={}: lc {} vs oracle {}",
            topk, threads, r.lc_after, oracle.lc_after
        );
        prop_assert!(
            r.passes <= oracle.passes,
            "batching took more passes ({} vs {})", r.passes, oracle.passes
        );
        // Counter discipline: every candidate is accepted or rejected,
        // and accepted candidates are exactly the extractions.
        prop_assert_eq!(r.batch_candidates, r.batch_accepted + r.batch_rejected);
        prop_assert_eq!(r.batch_accepted, r.extractions);
    }

    /// K = 1 through the batch plumbing is byte-identical to the classic
    /// one-per-pass engine: same network dump, same report counters.
    #[test]
    fn topk1_is_byte_identical_to_classic(
        nw in arb_network(6, 8, 6),
        threads in 0usize..3,
    ) {
        let (classic_nw, classic) = run(&nw, 1, threads);
        let (batch_nw, batch) = {
            // Explicitly exercise the same config the CLI builds for
            // --batch-rects 1.
            let mut work = nw.clone();
            let mut cfg = ExtractConfig::default();
            cfg.search.topk = 1;
            cfg.search.par_threads = threads;
            let report = extract_kernels(&mut work, &[], &cfg);
            (work, report)
        };
        prop_assert_eq!(write_network(&classic_nw), write_network(&batch_nw));
        prop_assert_eq!(classic.lc_after, batch.lc_after);
        prop_assert_eq!(classic.extractions, batch.extractions);
        prop_assert_eq!(classic.total_value, batch.total_value);
        prop_assert_eq!(classic.passes, batch.passes);
    }

    /// The batched result is deterministic in the thread count: the
    /// parallel searches feed the same canonical top-K, so the final
    /// network must not depend on par_threads.
    #[test]
    fn batched_extraction_is_thread_count_invariant(
        nw in arb_network(6, 8, 6),
        topk in 2usize..9,
    ) {
        let (a, ra) = run(&nw, topk, 0);
        let (b, rb) = run(&nw, topk, 2);
        prop_assert_eq!(write_network(&a), write_network(&b));
        prop_assert_eq!(ra.lc_after, rb.lc_after);
        prop_assert_eq!(ra.extractions, rb.extractions);
        prop_assert_eq!(ra.passes, rb.passes);
    }
}
