//! Chaos suite: the service under deterministic fault injection.
//!
//! Every test drives a real `Service` (in-process client) with a
//! seeded `FaultPlan` and asserts the robustness contract:
//!
//! * **exactly one answer per accepted job** — client-side outcome
//!   tallies equal the registry's counters at quiescence;
//! * **the balance identity holds** — `submitted = accepted + rejected`
//!   (all rejection reasons, including `quarantined`) and
//!   `accepted = completed + timed_out + failed + drained`;
//! * **the pool self-heals** — after worker-fatal faults the supervisor
//!   returns the pool to configured strength.
//!
//! Fault-site safety (documented in `pf_core::fault`): `panic` rules are
//! only used at `serve:pickup` (kills the worker thread on purpose) and
//! `seq:cover` (caught by the worker's `catch_unwind`); the barrier-
//! synchronized drivers (`replicated:reduce`, `lshaped:step`) only get
//! `latency`/`cancel` faults, because a panic inside a barrier group
//! would strand the sibling threads, not exercise recovery.

use parafactor::core::{FaultPlan, FaultRule};
use parafactor::serve::{
    Algorithm, JobOutcome, JobSpec, Rejection, RetryPolicy, Service, ServiceConfig,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Suppresses the default panic hook's stderr spew for injected panics
/// (they are the point of this suite); real panics still print.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // An injected panic in a scoped partition thread re-raises
            // at the scope join as "a scoped thread panicked"; both the
            // original and the re-raise are expected noise here.
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("fault injected"))
                .unwrap_or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.contains("a scoped thread panicked"))
                });
            if !injected {
                prev(info);
            }
        }));
    });
}

fn spec(alg: Algorithm, workload: &str) -> JobSpec {
    JobSpec {
        procs: 2,
        ..JobSpec::new(alg, workload)
    }
}

/// Polls until the pool gauge reads `n` live workers (the supervisor
/// heals asynchronously); panics after 10 s.
fn await_pool_strength(client: &parafactor::serve::Client, n: i64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.metrics().workers_alive.load(Ordering::Relaxed) != n {
        assert!(
            Instant::now() < deadline,
            "pool never returned to strength {n} (alive: {})",
            client.metrics().workers_alive.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Client-side outcome tally for comparing against the registry.
#[derive(Debug, Default)]
struct Tally {
    completed: u64,
    timed_out: u64,
    failed: u64,
    drained: u64,
    rejected_full: u64,
    rejected_shutdown: u64,
    rejected_invalid: u64,
    quarantined: u64,
}

impl Tally {
    fn absorb_outcome(&mut self, o: &JobOutcome) {
        match o {
            JobOutcome::Completed(_) => self.completed += 1,
            JobOutcome::TimedOut(_) => self.timed_out += 1,
            JobOutcome::Drained => self.drained += 1,
            JobOutcome::Failed { .. } => self.failed += 1,
        }
    }

    fn absorb_rejection(&mut self, r: &Rejection) {
        match r {
            Rejection::QueueFull { .. } => self.rejected_full += 1,
            Rejection::ShuttingDown => self.rejected_shutdown += 1,
            Rejection::Invalid(_) => self.rejected_invalid += 1,
            Rejection::Quarantined { .. } => self.quarantined += 1,
        }
    }

    fn merge(&mut self, other: &Tally) {
        self.completed += other.completed;
        self.timed_out += other.timed_out;
        self.failed += other.failed;
        self.drained += other.drained;
        self.rejected_full += other.rejected_full;
        self.rejected_shutdown += other.rejected_shutdown;
        self.rejected_invalid += other.rejected_invalid;
        self.quarantined += other.quarantined;
    }
}

/// Asserts the full contract at quiescence: client tallies equal the
/// registry counters (exactly one answer each) and the balance identity
/// holds on both sides.
fn assert_books_match(client: &parafactor::serve::Client, t: &Tally) {
    let m = client.metrics();
    assert!(m.balanced(), "balance identity broken");
    assert_eq!(m.completed.get(), t.completed, "completed tally");
    assert_eq!(m.timed_out.get(), t.timed_out, "timed_out tally");
    assert_eq!(m.failed.get(), t.failed, "failed tally");
    assert_eq!(m.drained.get(), t.drained, "drained tally");
    assert_eq!(
        m.rejected_full.get(),
        t.rejected_full,
        "rejected_full tally"
    );
    assert_eq!(
        m.rejected_shutdown.get(),
        t.rejected_shutdown,
        "rejected_shutdown tally"
    );
    assert_eq!(
        m.rejected_invalid.get(),
        t.rejected_invalid,
        "rejected_invalid tally"
    );
    assert_eq!(m.quarantined.get(), t.quarantined, "quarantined tally");
    assert_eq!(
        m.submitted.get(),
        m.accepted.get() + m.rejected(),
        "submission side"
    );
}

/// Prices how many `seq:cover` draws a job sequence makes, by running it
/// against a probe plan whose only rule is a zero-cost latency (hits ==
/// draws at probability 1). A second service can then arm an absorber
/// rule capped at exactly that count, landing the *next* fault
/// deterministically on the first cover checkpoint of the following job.
fn price_cover_draws(config: ServiceConfig, jobs: &[JobSpec]) -> u64 {
    let probe =
        Arc::new(FaultPlan::new(1).with_rule(FaultRule::latency_at("seq:cover", Duration::ZERO)));
    let service = Service::start(ServiceConfig {
        fault_plan: Some(Arc::clone(&probe)),
        ..config
    });
    let client = service.client();
    for job in jobs {
        let o = client.submit(job.clone()).expect("accepted").wait();
        assert!(matches!(o, JobOutcome::Completed(_)), "probe job: {o:?}");
    }
    service.shutdown();
    probe.hits("seq:cover")
}

/// Satellite: chaos on the delta-submit path. A panic inside the dirty-
/// cone re-extraction must answer exactly once (Failed), admit neither
/// the spliced network nor any partial entry, and leave the base entry
/// serving exact hits.
#[test]
fn panic_mid_delta_splice_never_admits_partial_results() {
    quiet_injected_panics();
    const BASE: &str = "gen:misex3@0.1";
    const NEXT: &str = "gen:dalu@0.2";
    let config = || ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        poison_threshold: 100,
        ..ServiceConfig::default()
    };
    let fill_draws = price_cover_draws(config(), &[spec(Algorithm::Seq, BASE)]);
    assert!(fill_draws >= 1, "the fill never reached the cover loop");

    // The absorber soaks exactly the fill's draws; the panic then lands
    // on the delta job's first dirty-cone cover checkpoint.
    let plan = Arc::new(
        FaultPlan::new(1)
            .with_rule(FaultRule::latency_at("seq:cover", Duration::ZERO).max_hits(fill_draws))
            .with_rule(FaultRule::panic_at("seq:cover").max_hits(1)),
    );
    let service = Service::start(ServiceConfig {
        fault_plan: Some(Arc::clone(&plan)),
        ..config()
    });
    let client = service.client();
    let cache = client.cache().expect("cache enabled by default");
    let mut tally = Tally::default();

    // Fill the base; its entry is the delta job's splice source.
    let o = client
        .submit(spec(Algorithm::Seq, BASE))
        .expect("accepted")
        .wait();
    assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
    tally.absorb_outcome(&o);
    assert_eq!(cache.len(), 1);

    // The delta job: the base resolves, clean cones splice, and the
    // dirty re-extraction panics before its first extraction.
    let mut delta = spec(Algorithm::Seq, NEXT);
    delta.delta_from = Some(format!("seq/{BASE}"));
    let o = client.submit(delta).expect("accepted").wait();
    assert!(
        matches!(&o, JobOutcome::Failed { message } if message.contains("fault injected")),
        "{o:?}"
    );
    tally.absorb_outcome(&o);
    assert_eq!(
        cache.len(),
        1,
        "a panicking delta job admitted a spliced or partial entry"
    );

    // The base entry survived untouched: an exact-hit resubmission
    // replays from the cache — no driver run, no fault draw.
    let o = client
        .submit(spec(Algorithm::Seq, BASE))
        .expect("accepted")
        .wait();
    match &o {
        JobOutcome::Completed(jr) => assert_eq!(jr.report.phases[0].name, "cache"),
        other => panic!("cache-served rerun: {other:?}"),
    }
    tally.absorb_outcome(&o);

    // And the new workload's key is genuinely absent: a plain rerun
    // misses. It runs clean (the panic budget is spent) but its struck
    // fingerprint keeps it out of the cache.
    let o = client
        .submit(spec(Algorithm::Seq, NEXT))
        .expect("accepted")
        .wait();
    assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
    tally.absorb_outcome(&o);
    assert_eq!(cache.len(), 1);

    service.shutdown();
    assert_books_match(&client, &tally);
    let m = client.metrics();
    assert_eq!(m.panics.get(), 1);
    assert_eq!(m.delta_jobs.get(), 0, "a failed splice is not a delta job");
    assert_eq!(
        m.cache_lookups.get(),
        3,
        "the panicked job reports no events"
    );
    assert_eq!(m.cache_hits.get(), 1);
    assert_eq!(m.cache_misses.get(), 2);
    assert_eq!(plan.hits("seq:cover"), fill_draws + 1);
}

/// Satellite: chaos on the warm-start path. Capacity-1 LRU evicts the
/// first fill's result but keeps its warm hints, so its resubmission
/// takes the warm-started cold path — where an injected cancellation
/// must drain the job without admitting anything.
#[test]
fn cancelled_warm_start_jobs_drain_and_admit_nothing() {
    quiet_injected_panics();
    const A: &str = "gen:misex3@0.05";
    const B: &str = "gen:dalu@0.05";
    let config = || ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        cache_entries: 1,
        ..ServiceConfig::default()
    };
    let fills = [spec(Algorithm::Seq, A), spec(Algorithm::Seq, B)];
    let fill_draws = price_cover_draws(config(), &fills);

    let plan = Arc::new(
        FaultPlan::new(2)
            .with_rule(FaultRule::latency_at("seq:cover", Duration::ZERO).max_hits(fill_draws))
            .with_rule(FaultRule::cancel_at("seq:cover").max_hits(1)),
    );
    let service = Service::start(ServiceConfig {
        fault_plan: Some(Arc::clone(&plan)),
        ..config()
    });
    let client = service.client();
    let cache = client.cache().expect("cache enabled");
    let mut tally = Tally::default();
    for job in fills {
        let o = client.submit(job).expect("accepted").wait();
        assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
        tally.absorb_outcome(&o);
    }
    assert_eq!(cache.len(), 1, "capacity-1 LRU holds only the second fill");

    // A's resubmission: exact miss (evicted), warm hints resident — and
    // the first cover checkpoint cancels the run.
    let o = client
        .submit(spec(Algorithm::Seq, A))
        .expect("accepted")
        .wait();
    assert!(matches!(o, JobOutcome::Drained), "{o:?}");
    tally.absorb_outcome(&o);
    assert_eq!(cache.len(), 1, "a drained warm-start run admitted an entry");

    // Rerun A clean (the cancel budget is spent): it must miss — the
    // drained run admitted nothing — then complete and be admitted,
    // because a cancellation is not a poison strike.
    let o = client
        .submit(spec(Algorithm::Seq, A))
        .expect("accepted")
        .wait();
    assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
    tally.absorb_outcome(&o);

    service.shutdown();
    assert_books_match(&client, &tally);
    let m = client.metrics();
    assert_eq!(m.drained.get(), 1);
    assert_eq!(m.panics.get(), 0, "cancellation never panics");
    assert_eq!(m.cache_lookups.get(), 4);
    assert_eq!(m.cache_hits.get(), 0, "the drained run left nothing to hit");
    assert_eq!(m.cache_misses.get(), 4);
    assert_eq!(m.cache_warm.get(), 2, "both resubmissions warm-started");
    assert_eq!(m.cache_evictions.get(), 2);
    assert_eq!(cache.len(), 1);
}

#[test]
fn poison_job_kills_workers_quarantines_and_the_pool_heals() {
    quiet_injected_panics();
    // Every pickup of the seq fingerprint panics outside the worker's
    // catch (thread death) — twice, matching the quarantine threshold.
    let plan = FaultPlan::new(0xC0FFEE)
        .with_rule(FaultRule::panic_at("serve:pickup:seq/gen:misex3@0.05").max_hits(2));
    let service = Service::start(ServiceConfig {
        workers: 3,
        queue_capacity: 64,
        fault_plan: Some(Arc::new(plan)),
        poison_threshold: 2,
        ..ServiceConfig::default()
    });
    let client = service.client();
    let mut tally = Tally::default();

    // The poison job: two worker-fatal runs, then the door closes.
    for _ in 0..2 {
        let t = client
            .submit(spec(Algorithm::Seq, "gen:misex3@0.05"))
            .expect("accepted while below threshold");
        let o = t.wait();
        assert!(
            matches!(&o, JobOutcome::Failed { message } if message.contains("died")),
            "worker-fatal run answers failed: {o:?}"
        );
        tally.absorb_outcome(&o);
    }
    for _ in 0..4 {
        match client.submit(spec(Algorithm::Seq, "gen:misex3@0.05")) {
            Err(r @ Rejection::Quarantined { strikes }) => {
                assert_eq!(strikes, 2);
                tally.absorb_rejection(&r);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
    }
    // Healthy fingerprints keep completing on the healed pool.
    for _ in 0..6 {
        let t = client
            .submit(spec(Algorithm::Independent, "gen:misex3@0.05"))
            .expect("accepted");
        let o = t.wait();
        assert!(matches!(o, JobOutcome::Completed(_)), "{o:?}");
        tally.absorb_outcome(&o);
    }

    await_pool_strength(&client, 3);
    assert!(
        client.metrics().respawns.get() >= 2,
        "two worker deaths need two respawns"
    );
    service.shutdown();
    assert_books_match(&client, &tally);
    assert_eq!(client.metrics().panics.get(), 2);
}

#[test]
fn caught_driver_panics_fail_structurally_and_spare_the_thread() {
    quiet_injected_panics();
    // seq:cover fires inside the worker's catch_unwind: jobs fail, the
    // thread survives, nothing needs respawning.
    let plan = FaultPlan::new(42).with_rule(
        FaultRule::panic_at("seq:cover")
            .probability(0.5)
            .max_hits(3),
    );
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        fault_plan: Some(Arc::new(plan)),
        // High threshold: this test wants failures, not quarantine.
        poison_threshold: 100,
        ..ServiceConfig::default()
    });
    let client = service.client();
    let mut tally = Tally::default();
    let tickets: Vec<_> = (0..10)
        .map(|_| {
            client
                .submit(spec(Algorithm::Seq, "gen:misex3@0.05"))
                .expect("accepted")
        })
        .collect();
    for t in tickets {
        tally.absorb_outcome(&t.wait());
    }
    service.shutdown();
    assert_books_match(&client, &tally);
    let m = client.metrics();
    assert_eq!(m.failed.get(), 3, "max_hits caps the injected failures");
    assert_eq!(m.panics.get(), 3);
    assert_eq!(m.respawns.get(), 0, "caught panics never kill the thread");
    assert_eq!(m.completed.get(), 7);
}

#[test]
fn latency_and_cancel_faults_at_barrier_sites_stay_accounted() {
    quiet_injected_panics();
    // Barrier-coupled drivers only get panic-safe fault kinds: latency
    // stretches lshaped steps, cancel drains independent merges.
    let plan = FaultPlan::new(7)
        .with_rule(FaultRule::latency_at("lshaped:step", Duration::from_millis(1)).max_hits(3))
        .with_rule(FaultRule::cancel_at("independent:merge").max_hits(2));
    let plan = Arc::new(plan);
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        fault_plan: Some(Arc::clone(&plan)),
        ..ServiceConfig::default()
    });
    let client = service.client();
    let mut tally = Tally::default();
    let tickets: Vec<_> = (0..4)
        .map(|_| {
            client
                .submit(spec(Algorithm::Lshaped, "gen:misex3@0.05"))
                .expect("accepted")
        })
        .chain((0..4).map(|_| {
            client
                .submit(spec(Algorithm::Independent, "gen:misex3@0.05"))
                .expect("accepted")
        }))
        .collect();
    for t in tickets {
        tally.absorb_outcome(&t.wait());
    }
    service.shutdown();
    assert_books_match(&client, &tally);
    let m = client.metrics();
    // Exactly two independent jobs hit the injected cancellation.
    assert_eq!(m.drained.get(), 2);
    assert_eq!(m.completed.get(), 6);
    assert_eq!(m.failed.get(), 0, "latency/cancel faults never fail jobs");
    assert!(plan.hits("lshaped:step") >= 1, "latency rule never fired");
    assert_eq!(plan.hits("independent:merge"), 2);
}

#[test]
fn backpressure_retry_absorbs_a_storm() {
    quiet_injected_panics();
    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    let client = service.client();
    let policy = RetryPolicy {
        max_retries: 64,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        seed: 0xFEED,
    };
    let tally = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let client = client.clone();
                let policy = RetryPolicy {
                    seed: policy.seed ^ i as u64,
                    ..policy.clone()
                };
                s.spawn(move || {
                    let mut t = Tally::default();
                    for _ in 0..5 {
                        let ticket = client
                            .submit_with_retry(spec(Algorithm::Seq, "gen:misex3@0.05"), &policy)
                            .expect("retry rides out a capacity-2 queue");
                        t.absorb_outcome(&ticket.wait());
                    }
                    t
                })
            })
            .collect();
        let mut total = Tally::default();
        for h in handles {
            total.merge(&h.join().unwrap());
        }
        total
    });
    service.shutdown();
    let m = client.metrics();
    assert!(m.balanced());
    assert_eq!(m.completed.get(), 20, "every job eventually ran");
    assert_eq!(tally.completed, 20);
    // Every backpressure bounce was followed by a retry (the final
    // attempt of each job succeeded).
    assert_eq!(m.retries.get(), m.rejected_full.get());
}

#[test]
fn chaos_storm_every_job_answered_exactly_once_and_the_pool_survives() {
    quiet_injected_panics();
    const WORKERS: usize = 3;
    // Mixed plan: worker-fatal pickups for one fingerprint, caught
    // panics in the sequential cover loop, a couple of injected
    // cancellations, and latency jitter on the L-shaped step loop.
    let plan = FaultPlan::new(0xBAD_5EED)
        .with_rule(FaultRule::panic_at("serve:pickup:replicated/gen:misex3@0.06").max_hits(2))
        .with_rule(
            FaultRule::panic_at("seq:cover")
                .probability(0.25)
                .max_hits(4),
        )
        .with_rule(FaultRule::cancel_at("independent:merge").max_hits(2))
        .with_rule(
            FaultRule::latency_at("lshaped:step", Duration::from_millis(1))
                .probability(0.5)
                .max_hits(8),
        );
    let service = Service::start(ServiceConfig {
        workers: WORKERS,
        queue_capacity: 128,
        fault_plan: Some(Arc::new(plan)),
        // Every job here shares one workload, so strikes concentrate on
        // four fingerprints; a tight threshold would quarantine them all
        // after the early panics and starve the later fault sites.
        // Quarantine has its own test — the storm wants jobs flowing.
        poison_threshold: 10,
        ..ServiceConfig::default()
    });
    let client = service.client();
    let algorithms = [
        Algorithm::Seq,
        Algorithm::Replicated,
        Algorithm::Independent,
        Algorithm::Lshaped,
    ];
    let tally = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|thread_idx| {
                let client = client.clone();
                s.spawn(move || {
                    let policy = RetryPolicy {
                        max_retries: 64,
                        base: Duration::from_millis(1),
                        cap: Duration::from_millis(20),
                        seed: 0xACE ^ thread_idx as u64,
                    };
                    let mut t = Tally::default();
                    for j in 0..8 {
                        let alg = algorithms[(thread_idx + j) % algorithms.len()];
                        match client.submit_with_retry(spec(alg, "gen:misex3@0.06"), &policy) {
                            Ok(ticket) => t.absorb_outcome(&ticket.wait()),
                            Err(r) => t.absorb_rejection(&r),
                        }
                    }
                    t
                })
            })
            .collect();
        let mut total = Tally::default();
        for h in handles {
            total.merge(&h.join().unwrap());
        }
        total
    });

    // The contract: the pool is back at configured strength…
    await_pool_strength(&client, WORKERS as i64);
    // …every submission was answered exactly once, and the books close.
    service.shutdown();
    assert_books_match(&client, &tally);
    let m = client.metrics();
    assert_eq!(
        m.submitted.get(),
        32 + m.rejected_full.get(),
        "32 jobs plus retried backpressure bounces"
    );
    assert_eq!(
        m.panics.get(),
        m.failed.get(),
        "every failure in this storm is a panic"
    );
    assert!(
        m.respawns.get() >= 2,
        "both worker-fatal pickups were healed"
    );
    assert_eq!(m.drained.get(), 2, "the two injected cancels drained");
    assert_eq!(
        m.workers_alive.load(Ordering::Relaxed),
        0,
        "shutdown joined every worker"
    );
}
