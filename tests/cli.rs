//! Integration tests for the `parafactor` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parafactor"))
}

#[test]
fn runs_sequential_on_generated_circuit() {
    let out = bin()
        .args(["-a", "seq", "--verify", "gen:misex3@0.1"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verify: PASS"), "{stdout}");
    assert!(stdout.contains("seq: LC"), "{stdout}");
}

#[test]
fn all_algorithms_run_and_verify() {
    for alg in [
        "seq",
        "replicated",
        "independent",
        "lshaped",
        "lshaped-seq",
        "lshaped-cx",
        "iterative",
        "script",
    ] {
        let out = bin()
            .args(["-a", alg, "-p", "2", "--verify", "gen:misex3@0.08"])
            .output()
            .expect("binary runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{alg}: {stdout}");
        assert!(stdout.contains("verify: PASS"), "{alg}: {stdout}");
    }
}

#[test]
fn blif_roundtrip_through_the_cli() {
    let dir = std::env::temp_dir().join("parafactor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let blif = dir.join("out.blif");
    let out = bin()
        .args(["-a", "seq", "-o", blif.to_str().unwrap(), "gen:dalu@0.05"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&blif).unwrap();
    assert!(text.starts_with(".model"));
    // Feed it back in.
    let out = bin()
        .args(["-a", "seq", "--verify", blif.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verify: PASS"), "{stdout}");
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let out = bin()
        .args(["-a", "nonsense", "gen:misex3@0.05"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
}

#[test]
fn unknown_profile_fails_cleanly() {
    let out = bin().args(["gen:nosuch@0.1"]).output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn stats_flag_prints_stats_block() {
    let out = bin()
        .args(["--stats", "gen:misex3@0.08"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("lits(fac)"), "{stdout}");
    assert!(stdout.contains("depth"), "{stdout}");
}

#[test]
fn objective_flag_accepted() {
    for obj in ["area", "timing", "power"] {
        let out = bin()
            .args(["--objective", obj, "--verify", "gen:misex3@0.08"])
            .output()
            .expect("binary runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{obj}: {stdout}");
        assert!(stdout.contains("verify: PASS"), "{obj}");
    }
}

#[test]
fn help_exits_with_usage() {
    let out = bin().arg("--help").output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--algorithm"), "{stdout}");
}
