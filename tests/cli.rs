//! Integration tests for the `parafactor` command-line binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parafactor"))
}

#[test]
fn runs_sequential_on_generated_circuit() {
    let out = bin()
        .args(["-a", "seq", "--verify", "gen:misex3@0.1"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verify: PASS"), "{stdout}");
    assert!(stdout.contains("seq: LC"), "{stdout}");
}

#[test]
fn all_algorithms_run_and_verify() {
    for alg in [
        "seq",
        "replicated",
        "independent",
        "lshaped",
        "lshaped-seq",
        "lshaped-cx",
        "iterative",
        "script",
    ] {
        let out = bin()
            .args(["-a", alg, "-p", "2", "--verify", "gen:misex3@0.08"])
            .output()
            .expect("binary runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{alg}: {stdout}");
        assert!(stdout.contains("verify: PASS"), "{alg}: {stdout}");
    }
}

#[test]
fn blif_roundtrip_through_the_cli() {
    let dir = std::env::temp_dir().join("parafactor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let blif = dir.join("out.blif");
    let out = bin()
        .args(["-a", "seq", "-o", blif.to_str().unwrap(), "gen:dalu@0.05"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&blif).unwrap();
    assert!(text.starts_with(".model"));
    // Feed it back in.
    let out = bin()
        .args(["-a", "seq", "--verify", blif.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("verify: PASS"), "{stdout}");
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let out = bin()
        .args(["-a", "nonsense", "gen:misex3@0.05"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
}

#[test]
fn unknown_profile_fails_cleanly() {
    let out = bin().args(["gen:nosuch@0.1"]).output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn stats_flag_prints_stats_block() {
    let out = bin()
        .args(["--stats", "gen:misex3@0.08"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("lits(fac)"), "{stdout}");
    assert!(stdout.contains("depth"), "{stdout}");
}

#[test]
fn objective_flag_accepted() {
    for obj in ["area", "timing", "power"] {
        let out = bin()
            .args(["--objective", obj, "--verify", "gen:misex3@0.08"])
            .output()
            .expect("binary runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(out.status.success(), "{obj}: {stdout}");
        assert!(stdout.contains("verify: PASS"), "{obj}");
    }
}

#[test]
fn profile_emits_chrome_trace_event_json() {
    use parafactor::serve::{json, Json};
    // Integration tests run with the package root as cwd, so the
    // shipped example circuit resolves relatively.
    let out = bin()
        .args(["profile", "examples/shared_kernels.blif"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = json::parse(stdout.trim()).expect("stdout is one JSON document");

    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing: {stdout}");
    };
    assert!(!events.is_empty());
    let mut span_names = Vec::new();
    let mut covered_us = 0.0;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let name = ev.get("name").and_then(Json::as_str).expect("name");
        match ph {
            // Metadata: lane labels ride on thread_name records.
            "M" => assert_eq!(name, "thread_name"),
            // Complete events need ts + dur (µs since the trace epoch).
            "X" => {
                assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "{stdout}");
                let dur = ev.get("dur").and_then(Json::as_f64).expect("dur");
                span_names.push(name.to_string());
                // seq runs on one lane, so plain summing is exact.
                if name == "matrix" || name == "cover" {
                    covered_us += dur;
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    for expected in ["matrix", "cover", "search", "apply"] {
        assert!(
            span_names.iter().any(|n| n == expected),
            "span {expected:?} missing from {span_names:?}"
        );
    }
    // The acceptance bar: phase spans account for >= 95% of elapsed.
    let elapsed_us = doc
        .get("otherData")
        .and_then(|o| o.get("elapsed_us"))
        .and_then(Json::as_u64)
        .expect("otherData.elapsed_us");
    assert!(
        covered_us >= 0.95 * elapsed_us as f64,
        "phase spans cover only {covered_us:.1}µs of {elapsed_us}µs"
    );
}

#[test]
fn profile_runs_parallel_drivers_and_writes_files() {
    use parafactor::serve::{json, Json};
    let dir = std::env::temp_dir().join("parafactor_profile_test");
    std::fs::create_dir_all(&dir).unwrap();
    for alg in ["replicated", "independent", "lshaped", "iterative"] {
        let path = dir.join(format!("{alg}.json"));
        let out = bin()
            .args([
                "profile",
                "-a",
                alg,
                "-p",
                "2",
                "-o",
                path.to_str().unwrap(),
                "gen:misex3@0.08",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{alg}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(text.trim()).expect("file is one JSON document");
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("{alg}: traceEvents missing");
        };
        assert!(!events.is_empty(), "{alg}");
        assert_eq!(
            doc.get("otherData")
                .and_then(|o| o.get("algorithm"))
                .and_then(Json::as_str),
            Some(alg)
        );
    }
}

#[test]
fn profile_rejects_untraceable_algorithms() {
    let out = bin()
        .args(["profile", "-a", "script", "gen:misex3@0.05"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("profile supports"), "{stderr}");
}

#[test]
fn help_exits_with_usage() {
    let out = bin().arg("--help").output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--algorithm"), "{stdout}");
}
