//! Extraction under different objectives — the paper's §6 closing
//! remark ("our methods can be directly applied to timing driven and low
//! power driven synthesis") in action.
//!
//! ```text
//! cargo run --release --example objectives [scale]
//! ```

use parafactor::core::{extract_kernels, ExtractConfig, Objective};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::stats;
use parafactor::workloads::{generate, profile_by_name, scale_profile};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let profile = scale_profile(&profile_by_name("seq").unwrap(), scale);
    let nw = generate(&profile);
    let base_stats = stats::stats(&nw).unwrap();
    println!(
        "circuit: seq analogue — {} literals, depth {}, {} nodes\n",
        base_stats.lits_sop, base_stats.depth, base_stats.live_nodes
    );
    println!(
        "{:>8} {:>8} {:>9} {:>7} {:>12} {:>12}",
        "obj", "LC", "lits(fac)", "depth", "own before", "own after"
    );

    let objectives = [
        Objective::area(&nw),
        Objective::timing(&nw),
        Objective::power(&nw, 32, 0xBEEF),
    ];
    for obj in objectives {
        let mut copy = nw.clone();
        let before = obj.network_cost(&copy);
        extract_kernels(
            &mut copy,
            &[],
            &ExtractConfig {
                objective: Some(obj.clone()),
                ..ExtractConfig::default()
            },
        );
        let s = stats::stats(&copy).unwrap();
        println!(
            "{:>8} {:>8} {:>9} {:>7} {:>12} {:>12}",
            obj.name,
            s.lits_sop,
            s.lits_fac,
            s.depth,
            before,
            obj.network_cost(&copy)
        );
        assert!(
            equivalent_random(&nw, &copy, &EquivConfig::default()).unwrap(),
            "{} objective broke the function",
            obj.name
        );
    }
    println!();
    println!("each objective minimizes its own cost ('own after' column); the area");
    println!("row is the paper's literal-count optimization, the others are the");
    println!("timing- and power-driven variants of the same rectangle cover.");
}
