//! Walk through every worked example and figure of the paper on the
//! Example 1.1 network.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```
//!
//! Covers: Example 1.1 (extraction of a+b, 33 → 25 literals), the
//! kernels of G (§2), Figure 1 (the leftmost-column decomposition of the
//! rectangle search), Figure 2 (the partitioned co-kernel cube matrix),
//! Example 4.1 (independent partitions reach 26 literals), Example 5.1 /
//! Figure 4 (the L-shaped exchange with the paper's 100000 label
//! offsets), and the Example 5.2 consistency scenario on the shared
//! cube-state table.

use parafactor::core::{extract_kernels, ExtractConfig};
use parafactor::kcmatrix::{
    best_rectangle, CubeRegistry, CubeStates, KcMatrix, LabelGen, SearchConfig,
};
use parafactor::network::example::example_1_1;
use parafactor::network::transform::extract_node;
use parafactor::sop::fx::FxHashMap;
use parafactor::sop::kernel::{kernels, KernelConfig};
use parafactor::sop::{Cube, Lit, Sop};

fn main() {
    let (nw, ids) = example_1_1();
    let name_of = |i: u32| nw.name(i).to_string();

    println!("=== Equation 1: the network N = {{F, G, H}} ===");
    print!("{}", parafactor::network::io::write_network(&nw));
    println!("literal count: {}\n", nw.literal_count());

    // --- §2: kernels (and co-kernels) of G ------------------------------
    println!("=== Kernels of G (paper §2) ===");
    for p in kernels(nw.func(ids.g)) {
        println!(
            "  co-kernel {:>6}   kernel {}",
            format!("{}", p.cokernel),
            p.kernel
        );
    }
    println!("  (paper: ce+f with co-kernels a,b;  a+b with co-kernels f,ce)\n");

    // --- Example 1.1: extract X = a + b ---------------------------------
    println!("=== Example 1.1: extracting X = a + b ===");
    let mut once = nw.clone();
    let x_func = Sop::from_cubes([Cube::single(Lit::pos(ids.a)), Cube::single(Lit::pos(ids.b))]);
    extract_node(&mut once, "X", x_func, &[ids.f, ids.g]).unwrap();
    println!(
        "literal count {} -> {} (paper: 33 -> 25)\n",
        nw.literal_count(),
        once.literal_count()
    );

    // --- Figure 2: the partitioned co-kernel cube matrix ----------------
    println!("=== Figure 2: KC matrices for the partition {{F}} / {{G, H}} ===");
    let reg = CubeRegistry::new();
    let kc = KernelConfig::default();
    let mut b_f = KcMatrix::new();
    let mut rl0 = LabelGen::new(0, LabelGen::PAPER_OFFSET);
    let mut cl0 = LabelGen::new(0, LabelGen::PAPER_OFFSET);
    b_f.add_node_kernels(ids.f, nw.func(ids.f), &kc, &reg, &mut rl0, &mut cl0);
    println!("block 1 (F):\n{}", b_f.render(&|i| name_of(i)));
    let mut b_gh = KcMatrix::new();
    let mut rl1 = LabelGen::new(0, LabelGen::PAPER_OFFSET);
    let mut cl1 = LabelGen::new(0, LabelGen::PAPER_OFFSET);
    b_gh.add_node_kernels(ids.g, nw.func(ids.g), &kc, &reg, &mut rl1, &mut cl1);
    b_gh.add_node_kernels(ids.h, nw.func(ids.h), &kc, &reg, &mut rl1, &mut cl1);
    println!("block 2 (G, H):\n{}", b_gh.render(&|i| name_of(i)));

    // --- Figure 1: decomposing the rectangle search by leftmost column --
    println!("=== Figure 1: search decomposition over the full matrix ===");
    let reg_full = CubeRegistry::new();
    let mut full = KcMatrix::new();
    let mut rl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    let mut cl = LabelGen::new(0, LabelGen::DEFAULT_OFFSET);
    for n in [ids.f, ids.g, ids.h] {
        full.add_node_kernels(n, nw.func(n), &kc, &reg_full, &mut rl, &mut cl);
    }
    let w = reg_full.weights_snapshot();
    let nprocs = 3u32;
    for p in 0..nprocs {
        let cfg = SearchConfig {
            stripe: Some((p, nprocs)),
            ..SearchConfig::default()
        };
        let (best, stats) = best_rectangle(&full, &|id| w[id as usize], &cfg);
        println!(
            "  processor {p}: {:>4} column-sets explored, best value {}",
            stats.visited,
            best.as_ref().map_or(0, |r| r.value)
        );
    }
    let (global, _) = best_rectangle(&full, &|id| w[id as usize], &SearchConfig::default());
    let global = global.unwrap();
    println!(
        "  reduction picks value {} (kernel {}), as the sequential search would\n",
        global.value,
        global.kernel(&full)
    );

    // --- Example 4.1: independent partitions lose quality ---------------
    println!("=== Example 4.1: independent extraction on {{F}} and {{G, H}} ===");
    let mut part = nw.clone();
    extract_kernels(
        &mut part,
        &[ids.f],
        &ExtractConfig {
            name_prefix: "X".into(),
            ..Default::default()
        },
    );
    extract_kernels(
        &mut part,
        &[ids.g, ids.h],
        &ExtractConfig {
            name_prefix: "Z".into(),
            ..Default::default()
        },
    );
    let mut seq = nw.clone();
    let seq_rep = extract_kernels(&mut seq, &[], &ExtractConfig::default());
    println!(
        "  independent partitions: {} literals; full matrix: {} literals",
        part.literal_count(),
        seq.literal_count()
    );
    println!(
        "  (paper: 26 vs 22; our exact rectangle cover finds {} after {} extractions)\n",
        seq_rep.lc_after, seq_rep.extractions
    );

    // --- Example 5.1 / Figure 4: the L-shaped exchange -------------------
    println!("=== Example 5.1 / Figure 4: L-shaped exchange, paper offsets ===");
    // Processor 0 owns {G, H}, processor 1 owns {F} — the paper's split.
    let reg_l = CubeRegistry::new();
    let mut b0 = KcMatrix::new();
    let mut rl0 = LabelGen::new(0, LabelGen::PAPER_OFFSET);
    let mut cl0 = LabelGen::new(0, LabelGen::PAPER_OFFSET);
    b0.add_node_kernels(ids.g, nw.func(ids.g), &kc, &reg_l, &mut rl0, &mut cl0);
    b0.add_node_kernels(ids.h, nw.func(ids.h), &kc, &reg_l, &mut rl0, &mut cl0);
    let mut b1 = KcMatrix::new();
    let mut rl1 = LabelGen::new(1, LabelGen::PAPER_OFFSET);
    let mut cl1 = LabelGen::new(1, LabelGen::PAPER_OFFSET);
    b1.add_node_kernels(ids.f, nw.func(ids.f), &kc, &reg_l, &mut rl1, &mut cl1);

    // distribute_cube_ownership: greedy, processor 0 first.
    let mut owner: FxHashMap<Cube, u16> = FxHashMap::default();
    for col in b0.cols() {
        owner.entry(col.cube.clone()).or_insert(0);
    }
    for col in b1.cols() {
        owner.entry(col.cube.clone()).or_insert(1);
    }
    let fmt_cube = |c: &Cube| {
        c.iter()
            .map(|l| name_of(l.var().index()))
            .collect::<Vec<_>>()
            .join("")
    };
    let mut owned0: Vec<String> = owner
        .iter()
        .filter(|(_, &o)| o == 0)
        .map(|(c, _)| fmt_cube(c))
        .collect();
    let mut owned1: Vec<String> = owner
        .iter()
        .filter(|(_, &o)| o == 1)
        .map(|(c, _)| fmt_cube(c))
        .collect();
    owned0.sort();
    owned1.sort();
    println!("  local_cubes[0] = {owned0:?}   (paper: a, b, c, ce, f)");
    println!("  local_cubes[1] = {owned1:?}   (paper: de, g)");

    // B_10: processor 1's entries in processor-0-owned columns, copied
    // to processor 0 (the vertical leg of processor 0's L).
    type ShippedRow = (u64, u32, Cube, Vec<(Cube, u32)>);
    let rows1: Vec<ShippedRow> = b1
        .rows()
        .iter()
        .map(|r| {
            let entries: Vec<(Cube, u32)> = r
                .entries
                .iter()
                .filter(|&&(c, _)| owner[&b1.cols()[c].cube] == 0)
                .map(|&(c, id)| (b1.cols()[c].cube.clone(), id))
                .collect();
            (r.label, r.node, r.cokernel.clone(), entries)
        })
        .filter(|(_, _, _, e)| !e.is_empty())
        .collect();
    for (label, node, cokernel, entries) in rows1 {
        b0.add_row_with_entries(label, node, cokernel, entries, &mut cl0);
    }
    println!("\n  processor 0's L-shaped matrix after attaching B_10:");
    println!("{}", b0.render(&|i| name_of(i)));
    println!("  (compare the paper's Figure 4: F's rows appear under labels 100001+)\n");

    // --- Example 5.2: the concurrent-coverage race -----------------------
    println!("=== Example 5.2: why cubes need value / trueval / owner ===");
    let st = CubeStates::with_len(1);
    let weight = 3u32;
    println!("  cube 'af' weight {weight}: P0 and P1 both want it in their best rectangle");
    st.claim(0, 0);
    println!(
        "  P0 claims it -> P0 sees value {}, P1 sees value {}",
        st.value_for(0, weight, 0),
        st.value_for(0, weight, 1)
    );
    println!("  P1's rectangle is re-valued without the cube — no double-counted saving");
    st.mark_divided(0);
    println!(
        "  after division both see {} (state DIVIDED)",
        st.value_for(0, weight, 1)
    );
}
