//! A realistic tool workflow on a *real* circuit: build an 8-bit carry
//! chain, collapse part of it into flat carry-lookahead logic (SIS's
//! collapse step), re-factor it with the L-shaped parallel algorithm,
//! verify, and write the result as BLIF (the format SIS itself reads).
//!
//! ```text
//! cargo run --release --example blif_workflow
//! ```

use parafactor::core::{lshaped_extract, ExtractConfig, LShapedConfig};
use parafactor::kcmatrix::SearchConfig;
use parafactor::network::blif::{read_blif, write_blif};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::stats;
use parafactor::network::transform::{eliminate_node, sweep};
use parafactor::workloads::carry_chain;

fn main() {
    let nw = carry_chain(8);
    let s0 = stats::stats(&nw).unwrap();
    println!(
        "8-bit carry chain: {} literals, {} nodes, depth {}",
        s0.lits_sop, s0.live_nodes, s0.depth
    );

    // A structured carry chain is already factored — nothing to extract.
    // Flatten the first few stages into carry-lookahead SOPs (SIS's
    // collapse step), then let the factorizer rediscover the sharing:
    // the classic collapse-then-refactor flow.
    let mut opt = nw.clone();
    for i in (1..=4u32).rev() {
        if let Some(c) = opt.find(&format!("c{i}")) {
            let _ = eliminate_node(&mut opt, c);
        }
    }
    let _ = sweep(&mut opt);
    println!(
        "after collapsing carries c1..c4: {} literals, depth {}",
        opt.literal_count(),
        stats::depth(&opt).unwrap()
    );

    // Collapsed functions are dense; cap the exact-search budget (the
    // greedy seed already finds the good rectangles on dense matrices —
    // see the `ablation` bench).
    let report = lshaped_extract(
        &mut opt,
        &LShapedConfig {
            procs: 4,
            extract: ExtractConfig {
                search: SearchConfig {
                    budget: 20_000,
                    ..SearchConfig::default()
                },
                ..ExtractConfig::default()
            },
            ..LShapedConfig::default()
        },
    );
    let s1 = stats::stats(&opt).unwrap();
    println!(
        "after Algorithm L (4 procs): {} literals ({} extractions, {:?}, {} shipped)",
        s1.lits_sop, report.extractions, report.elapsed, report.shipped_rectangles
    );
    println!("factored literal count: {} -> {}", s0.lits_fac, s1.lits_fac);

    let ok = equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap();
    println!("equivalence: {}", if ok { "PASS" } else { "FAIL" });
    assert!(ok);

    // Round-trip through BLIF, as a hand-off to SIS-compatible tools.
    let blif = write_blif(&opt, "carry8_opt");
    let back = read_blif(&blif).unwrap();
    let ok = equivalent_random(&nw, &back, &EquivConfig::default()).unwrap();
    println!(
        "BLIF round-trip: {} ({} bytes)",
        if ok { "PASS" } else { "FAIL" },
        blif.len()
    );
    assert!(ok);

    println!("\nfirst lines of the BLIF output:");
    for line in blif.lines().take(8) {
        println!("  {line}");
    }
}
