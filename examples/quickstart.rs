//! Quickstart: build a small network, factor it, inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parafactor::core::{extract_kernels, ExtractConfig};
use parafactor::network::io::write_network;
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::network::Network;
use parafactor::sop::{Cube, Lit, Sop};

fn main() {
    // F = ac + ad + bc + bd + e  — the classic "extract a+b" example.
    let mut nw = Network::new();
    let a = nw.add_input("a").unwrap();
    let b = nw.add_input("b").unwrap();
    let c = nw.add_input("c").unwrap();
    let d = nw.add_input("d").unwrap();
    let e = nw.add_input("e").unwrap();
    let cube = |vars: &[u32]| Cube::from_lits(vars.iter().map(|&v| Lit::pos(v)));
    let f = nw
        .add_node(
            "F",
            Sop::from_cubes([
                cube(&[a, c]),
                cube(&[a, d]),
                cube(&[b, c]),
                cube(&[b, d]),
                cube(&[e]),
            ]),
        )
        .unwrap();
    nw.mark_output(f).unwrap();

    println!("before factorization ({} literals):", nw.literal_count());
    print!("{}", write_network(&nw));

    let original = nw.clone();
    let report = extract_kernels(&mut nw, &[], &ExtractConfig::default());

    println!();
    println!(
        "after kernel extraction ({} literals, {} extraction(s), saved {}):",
        nw.literal_count(),
        report.extractions,
        report.saved()
    );
    print!("{}", write_network(&nw));

    let ok = equivalent_random(&original, &nw, &EquivConfig::default()).unwrap();
    println!();
    println!(
        "functional equivalence (random simulation): {}",
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok);
}
