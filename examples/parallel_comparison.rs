//! Compare the three parallel algorithms on one synthetic circuit —
//! the paper's §6 conclusion table in miniature.
//!
//! ```text
//! cargo run --release --example parallel_comparison [scale]
//! ```

use parafactor::core::{
    extract_kernels, independent_extract, lshaped_extract, replicated_extract, ExtractConfig,
    IndependentConfig, LShapedConfig, ReplicatedConfig,
};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::workloads::{generate, profile_by_name, scale_profile};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let profile = scale_profile(&profile_by_name("dalu").unwrap(), scale);
    let nw = generate(&profile);
    println!(
        "circuit: {} analogue, {} literals, {} nodes\n",
        profile.name,
        nw.literal_count(),
        nw.node_ids().count()
    );

    // Sequential baseline (SIS's gkx).
    let mut s = nw.clone();
    let base = extract_kernels(&mut s, &[], &ExtractConfig::default());
    println!(
        "{:<28} LC {:>6}  time {:>10.3?}  (baseline)",
        "sequential (SIS gkx)", base.lc_after, base.elapsed
    );

    let procs = 4;
    let mut r_nw = nw.clone();
    let r = replicated_extract(
        &mut r_nw,
        &ReplicatedConfig {
            procs,
            ..ReplicatedConfig::default()
        },
    );
    println!(
        "{:<28} LC {:>6}  time {:>10.3?}  S {:>5.2}",
        format!("Algorithm R (replicated, p{procs})"),
        r.lc_after,
        r.elapsed,
        base.elapsed.as_secs_f64() / r.elapsed.as_secs_f64()
    );

    let mut i_nw = nw.clone();
    let i = independent_extract(
        &mut i_nw,
        &IndependentConfig {
            procs,
            ..IndependentConfig::default()
        },
    );
    println!(
        "{:<28} LC {:>6}  time {:>10.3?}  S {:>5.2}",
        format!("Algorithm I (independent, p{procs})"),
        i.lc_after,
        i.elapsed,
        base.elapsed.as_secs_f64() / i.elapsed.as_secs_f64()
    );

    let mut l_nw = nw.clone();
    let l = lshaped_extract(
        &mut l_nw,
        &LShapedConfig {
            procs,
            sequential: false,
            ..LShapedConfig::default()
        },
    );
    println!(
        "{:<28} LC {:>6}  time {:>10.3?}  S {:>5.2}  ({} partial rectangles shipped)",
        format!("Algorithm L (L-shaped, p{procs})"),
        l.lc_after,
        l.elapsed,
        base.elapsed.as_secs_f64() / l.elapsed.as_secs_f64(),
        l.shipped_rectangles
    );

    // Every variant must preserve the circuit's function.
    for (name, result) in [("R", &r_nw), ("I", &i_nw), ("L", &l_nw)] {
        let ok = equivalent_random(&nw, result, &EquivConfig::default()).unwrap();
        println!(
            "equivalence check {name}: {}",
            if ok { "PASS" } else { "FAIL" }
        );
        assert!(ok);
    }

    println!();
    println!("paper's conclusion: R preserves quality but scales poorly; I is fastest");
    println!("but loses quality as p grows; L is the compromise — near-SIS quality at");
    println!("good speedup (its LC should sit at or below I's, close to sequential).");
}
