//! Run the miniature synthesis script on a benchmark analogue and show
//! where the time goes — the motivation behind the paper's Table 1.
//!
//! ```text
//! cargo run --release --example synthesis_script [circuit] [scale]
//! ```

use parafactor::core::script::{run_script, ScriptConfig};
use parafactor::network::sim::{equivalent_random, EquivConfig};
use parafactor::workloads::{generate, profile_by_name, scale_profile};

fn main() {
    let circuit = std::env::args().nth(1).unwrap_or_else(|| "seq".to_string());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let Some(profile) = profile_by_name(&circuit) else {
        eprintln!("unknown circuit {circuit:?}; try misex3, dalu, des, seq, spla, ex1010");
        std::process::exit(1);
    };
    let profile = scale_profile(&profile, scale);
    let nw = generate(&profile);
    println!(
        "{}: {} literals, {} nodes, {} inputs",
        profile.name,
        nw.literal_count(),
        nw.node_ids().count(),
        nw.input_ids().count()
    );

    let mut opt = nw.clone();
    let report = run_script(&mut opt, &ScriptConfig::default());

    println!();
    println!("script finished:");
    println!(
        "  literal count     {} -> {}",
        report.lc_before, report.lc_after
    );
    println!("  factor passes     {}", report.factor_invocations);
    for (i, r) in report.factor_reports.iter().enumerate() {
        println!(
            "    pass {:>2}: {:>5} -> {:>5} ({} extractions, {:?})",
            i, r.lc_before, r.lc_after, r.extractions, r.elapsed
        );
    }
    println!("  factorization     {:?}", report.factor_time);
    println!("  total synthesis   {:?}", report.total_time);
    println!(
        "  factor share      {:.1}%   (paper's Table 1 average: 61.45%)",
        100.0 * report.factor_fraction()
    );

    let ok = equivalent_random(&nw, &opt, &EquivConfig::default()).unwrap();
    println!("  equivalence       {}", if ok { "PASS" } else { "FAIL" });
    assert!(ok);
}
